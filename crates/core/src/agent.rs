//! The forwarding abstraction and the Packet Re-cycling agent.
//!
//! A [`ForwardingAgent`] is a line card: a pure decision function from
//! *(current router, ingress interface, destination, per-packet header
//! state, set of failed links)* to *forward-on-this-dart / drop*. The
//! walker (`crate::walker`) and the event simulator (`pr-sim`) execute
//! agents; the baselines crate implements the same trait for FCP,
//! reconvergence and LFA, so every scheme runs under identical
//! machinery.
//!
//! [`PrAgent`] implements the paper's protocol (§4.2 basic mode, §4.3
//! distance-discriminator mode) over compiled [`PrNetwork`] state.

use pr_embedding::CellularEmbedding;
use pr_graph::{AllPairs, Dart, Graph, LinkSet, NodeId};
use serde::{Deserialize, Serialize};

use crate::{
    CycleFollowingTable, DiscriminatorKind, HeaderCodec, MemoryFootprint, PrHeader, RoutingTables,
};

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// The routing table has no entry (cannot happen on a connected
    /// base topology; kept for defensive completeness).
    NoRoute,
    /// Every interface at the current router leads into a failed link.
    Isolated,
    /// The agent proved the destination unreachable with the failure
    /// knowledge it carries (only agents that carry failure state, such
    /// as FCP, can do this).
    Unreachable,
    /// Hop budget exhausted by the execution engine (possible
    /// forwarding loop or pathologically long detour).
    TtlExpired,
    /// The engine observed an exact repetition of (router, ingress,
    /// header state): a guaranteed livelock.
    ForwardingLoop,
    /// The packet header was inconsistent with the protocol (e.g. PR
    /// bit set on a packet with no ingress interface).
    ProtocolViolation,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::NoRoute => "no route",
            DropReason::Isolated => "all local interfaces failed",
            DropReason::Unreachable => "destination unreachable (carried failure state)",
            DropReason::TtlExpired => "TTL expired",
            DropReason::ForwardingLoop => "forwarding loop detected",
            DropReason::ProtocolViolation => "protocol violation",
        };
        f.write_str(s)
    }
}

/// A forwarding decision for one packet at one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Send the packet out on this dart (must leave the current router
    /// over a live link).
    Forward(Dart),
    /// Discard the packet.
    Drop(DropReason),
}

/// A forwarding scheme, usable by the walker and the event simulator.
///
/// Implementations must be deterministic: same inputs, same decision.
/// `State` is the scheme's per-packet header (e.g. [`PrHeader`] for PR,
/// a failure list for FCP); the engine threads it through the hops.
pub trait ForwardingAgent {
    /// Per-packet mutable header state carried between hops.
    type State: Clone + Default + std::fmt::Debug;

    /// Short scheme name used in experiment output ("pr-dd", "fcp", …).
    fn label(&self) -> &'static str;

    /// Decide what to do with a packet at `at` (≠ destination; the
    /// engine delivers before consulting the agent) that arrived over
    /// `ingress` (`None` at the source) and is headed for `dest`,
    /// given the currently failed links.
    fn decide(
        &self,
        at: NodeId,
        ingress: Option<Dart>,
        dest: NodeId,
        state: &mut Self::State,
        failed: &LinkSet,
    ) -> ForwardDecision;

    /// Number of header bits the scheme currently occupies in the
    /// packet, for overhead accounting (experiment E8). Constant for
    /// PR; grows with carried failures for FCP.
    fn header_bits(&self, state: &Self::State) -> usize;
}

/// Which protocol variant of the paper a [`PrAgent`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrMode {
    /// §4.2: PR bit only. Clears the bit at the first failure met while
    /// cycle following. Guarantees recovery from any single link
    /// failure in 2-edge-connected networks; may livelock under
    /// multiple failures (Figure 1(c) — caught by the engine's loop
    /// detection).
    Basic,
    /// §4.3: PR bit + DD bits with the decreasing-distance termination
    /// condition. Guarantees delivery under any non-disconnecting
    /// failure combination.
    DistanceDiscriminator,
}

impl std::fmt::Display for PrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrMode::Basic => f.write_str("pr-basic"),
            PrMode::DistanceDiscriminator => f.write_str("pr-dd"),
        }
    }
}

/// Compiled network-wide PR state: routing tables (with DD columns),
/// cycle following tables, the embedding, and the header codec sized
/// for the worst-case discriminator.
///
/// This corresponds to the output of the paper's offline phase: "once
/// it is available, appropriate cycle following tables are uploaded to
/// all routers" (§4.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrNetwork {
    mode: PrMode,
    discriminator: DiscriminatorKind,
    embedding: CellularEmbedding,
    routing: RoutingTables,
    cycle: CycleFollowingTable,
    codec: HeaderCodec,
    node_count: usize,
}

impl PrNetwork {
    /// Compiles all tables for `graph` under the given embedding and
    /// protocol configuration.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is disconnected (routing tables are total on
    /// connected graphs only).
    pub fn compile(
        graph: &Graph,
        embedding: CellularEmbedding,
        mode: PrMode,
        discriminator: DiscriminatorKind,
    ) -> PrNetwork {
        let all_pairs = AllPairs::compute_all_live(graph);
        let routing = RoutingTables::compile(graph, &all_pairs);
        let cycle = CycleFollowingTable::compile(graph, &embedding);
        let codec = match mode {
            PrMode::Basic => HeaderCodec::for_max_dd(0),
            PrMode::DistanceDiscriminator => {
                HeaderCodec::for_max_dd(routing.max_discriminator(discriminator))
            }
        };
        PrNetwork {
            mode,
            discriminator,
            embedding,
            routing,
            cycle,
            codec,
            node_count: graph.node_count(),
        }
    }

    /// The protocol variant this network runs.
    pub fn mode(&self) -> PrMode {
        self.mode
    }

    /// The discriminator function in use.
    pub fn discriminator_kind(&self) -> DiscriminatorKind {
        self.discriminator
    }

    /// The embedding the tables were compiled from.
    pub fn embedding(&self) -> &CellularEmbedding {
        &self.embedding
    }

    /// The compiled routing tables.
    pub fn routing(&self) -> &RoutingTables {
        &self.routing
    }

    /// The compiled cycle following tables.
    pub fn cycle_table(&self) -> &CycleFollowingTable {
        &self.cycle
    }

    /// The header codec (DD field sized to the worst-case
    /// discriminator, per the paper's `log2(d)` rule).
    pub fn codec(&self) -> HeaderCodec {
        self.codec
    }

    /// The discriminator of `node` towards `dest`.
    #[inline]
    pub fn dd(&self, node: NodeId, dest: NodeId) -> u64 {
        self.routing.discriminator(self.discriminator, node, dest)
    }

    /// Per-router memory footprint (experiment E9).
    pub fn memory_footprint(&self, graph: &Graph, node: NodeId) -> MemoryFootprint {
        MemoryFootprint::per_router(graph.degree(node), self.node_count.saturating_sub(1))
    }

    /// Binds the compiled state to a graph, yielding the runnable
    /// forwarding agent.
    pub fn agent<'a>(&'a self, graph: &'a Graph) -> PrAgent<'a> {
        debug_assert_eq!(graph.node_count(), self.node_count, "graph/tables mismatch");
        PrAgent { net: self, graph }
    }
}

/// The Packet Re-cycling forwarding agent (one instance serves every
/// router: routers are distinguished by the `at` argument).
#[derive(Debug, Clone, Copy)]
pub struct PrAgent<'a> {
    net: &'a PrNetwork,
    graph: &'a Graph,
}

impl<'a> PrAgent<'a> {
    /// Rotates counter-clockwise from the failed dart `from` until a
    /// live interface is found: the boundary-of-the-joined-region step
    /// of §5.1. `None` if every interface at the router is failed.
    fn rotate_live(&self, from: Dart, failed: &LinkSet) -> Option<Dart> {
        let rotation = self.net.embedding.rotation();
        let mut d = rotation.next_around(from);
        while d != from {
            if !failed.contains_dart(d) {
                return Some(d);
            }
            d = rotation.next_around(d);
        }
        None
    }

    /// Starts (or restarts) a cycle-following episode at `at` after its
    /// routing dart `failed_out` was found dead: sets the PR bit, in DD
    /// mode stamps the router's own discriminator (§4.3: "the first
    /// router that detects a failure ... will mark the packet header
    /// with the distance discriminator to the destination, as
    /// calculated by the router behind the link failure"), and deflects
    /// onto the failed dart's complementary cycle.
    fn start_episode(
        &self,
        at: NodeId,
        dest: NodeId,
        failed_out: Dart,
        state: &mut PrHeader,
        failed: &LinkSet,
    ) -> ForwardDecision {
        state.pr = true;
        state.dd = match self.net.mode {
            PrMode::Basic => 0,
            PrMode::DistanceDiscriminator => self.net.dd(at, dest),
        };
        match self.rotate_live(failed_out, failed) {
            Some(out) => ForwardDecision::Forward(out),
            None => ForwardDecision::Drop(DropReason::Isolated),
        }
    }

    /// Clears the PR bit and resumes conventional routing at `at`,
    /// starting a fresh episode on the spot if the routing dart is
    /// itself failed.
    fn resume_routing(
        &self,
        at: NodeId,
        dest: NodeId,
        state: &mut PrHeader,
        failed: &LinkSet,
    ) -> ForwardDecision {
        state.pr = false;
        state.dd = 0;
        let Some(out) = self.net.routing.next_dart(at, dest) else {
            return ForwardDecision::Drop(DropReason::NoRoute);
        };
        if !failed.contains_dart(out) {
            return ForwardDecision::Forward(out);
        }
        self.start_episode(at, dest, out, state, failed)
    }
}

impl<'a> ForwardingAgent for PrAgent<'a> {
    type State = PrHeader;

    fn label(&self) -> &'static str {
        match self.net.mode {
            PrMode::Basic => "pr-basic",
            PrMode::DistanceDiscriminator => "pr-dd",
        }
    }

    fn decide(
        &self,
        at: NodeId,
        ingress: Option<Dart>,
        dest: NodeId,
        state: &mut PrHeader,
        failed: &LinkSet,
    ) -> ForwardDecision {
        debug_assert_ne!(at, dest, "engine must deliver before consulting the agent");
        if !state.pr {
            // Conventional shortest-path forwarding.
            return self.resume_routing(at, dest, state, failed);
        }

        // Cycle-following mode: continue the face of the ingress dart.
        let Some(ingress) = ingress else {
            return ForwardDecision::Drop(DropReason::ProtocolViolation);
        };
        debug_assert_eq!(self.graph.dart_head(ingress), at, "ingress must enter this router");
        let cf = self.net.cycle.cycle_following(ingress);
        if !failed.contains_dart(cf) {
            return ForwardDecision::Forward(cf);
        }

        // The cycle's next link is down: §4.2/§4.3 termination check.
        match self.net.mode {
            // §4.2: meeting the failure again ends cycle following.
            PrMode::Basic => self.resume_routing(at, dest, state, failed),
            PrMode::DistanceDiscriminator => {
                let own = self.net.dd(at, dest);
                if own < state.dd {
                    // §4.3: strictly closer than the stamping router —
                    // safe to resume shortest-path routing.
                    self.resume_routing(at, dest, state, failed)
                } else {
                    // Keep following the boundary: deflect onto the
                    // complementary cycle of the failed interface.
                    match self.rotate_live(cf, failed) {
                        Some(out) => ForwardDecision::Forward(out),
                        None => ForwardDecision::Drop(DropReason::Isolated),
                    }
                }
            }
        }
    }

    fn header_bits(&self, _state: &PrHeader) -> usize {
        // PR's header cost is constant by design: the PR bit plus the
        // DD field, regardless of how many failures the packet has met.
        usize::from(self.net.codec.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_embedding::RotationSystem;
    use pr_graph::generators;

    fn ring_net(mode: PrMode) -> (Graph, PrNetwork) {
        let g = generators::ring(5, 1);
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net = PrNetwork::compile(&g, emb, mode, DiscriminatorKind::Hops);
        (g, net)
    }

    #[test]
    fn failure_free_forwarding_follows_routing_table() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        let none = LinkSet::empty(g.link_count());
        let mut state = PrHeader::default();
        let decision = agent.decide(NodeId(2), None, NodeId(0), &mut state, &none);
        assert_eq!(
            decision,
            ForwardDecision::Forward(net.routing().next_dart(NodeId(2), NodeId(0)).unwrap())
        );
        assert!(!state.pr, "no failure: PR bit stays clear");
    }

    #[test]
    fn failure_detection_sets_pr_and_stamps_dd() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        // Node 1 routes to 0 via link 1-0; fail it.
        let out = net.routing().next_dart(NodeId(1), NodeId(0)).unwrap();
        let failed = LinkSet::from_links(g.link_count(), [out.link()]);
        let mut state = PrHeader::default();
        let decision = agent.decide(NodeId(1), None, NodeId(0), &mut state, &failed);
        assert!(state.pr);
        assert_eq!(state.dd, 1, "node 1 is 1 hop from node 0");
        // Deflection leaves node 1 over its other interface.
        match decision {
            ForwardDecision::Forward(d) => {
                assert_eq!(g.dart_tail(d), NodeId(1));
                assert_ne!(d.link(), out.link());
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn basic_mode_keeps_dd_zero_and_single_header_bit() {
        let (g, net) = ring_net(PrMode::Basic);
        let agent = net.agent(&g);
        let out = net.routing().next_dart(NodeId(1), NodeId(0)).unwrap();
        let failed = LinkSet::from_links(g.link_count(), [out.link()]);
        let mut state = PrHeader::default();
        let _ = agent.decide(NodeId(1), None, NodeId(0), &mut state, &failed);
        assert!(state.pr);
        assert_eq!(state.dd, 0);
        assert_eq!(agent.header_bits(&state), 1, "basic mode spends exactly the PR bit");
    }

    #[test]
    fn pr_bit_without_ingress_is_a_protocol_violation() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        let none = LinkSet::empty(g.link_count());
        let mut state = PrHeader { pr: true, dd: 1 };
        assert_eq!(
            agent.decide(NodeId(1), None, NodeId(0), &mut state, &none),
            ForwardDecision::Drop(DropReason::ProtocolViolation)
        );
    }

    #[test]
    fn isolated_router_drops() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        // Fail both interfaces of node 1.
        let mut failed = LinkSet::empty(g.link_count());
        for &d in g.darts_from(NodeId(1)) {
            failed.insert(d.link());
        }
        let mut state = PrHeader::default();
        assert_eq!(
            agent.decide(NodeId(1), None, NodeId(0), &mut state, &failed),
            ForwardDecision::Drop(DropReason::Isolated)
        );
    }

    #[test]
    fn cycle_following_continues_over_live_links() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        let none = LinkSet::empty(g.link_count());
        // A packet in PR mode entering node 2 from node 1 continues the
        // face of its ingress dart.
        let ingress = g.find_dart(NodeId(1), NodeId(2)).unwrap();
        let mut state = PrHeader { pr: true, dd: 3 };
        let decision = agent.decide(NodeId(2), Some(ingress), NodeId(0), &mut state, &none);
        assert_eq!(decision, ForwardDecision::Forward(net.cycle_table().cycle_following(ingress)));
        assert!(state.pr, "no failure at this hop: stay in cycle following");
    }

    #[test]
    fn dd_termination_restamps_when_routing_hits_the_same_failure() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        // Node 1 (dd=1 towards 0) receives a PR packet stamped dd=3
        // whose cycle continuation is failed: 1 < 3 → resume routing.
        // On the ring, node 1's routing dart IS that same failed link,
        // so a fresh episode starts on the spot with the *smaller*
        // stamp — the strictly-decreasing-episode property §5.3's
        // termination argument rests on.
        let ingress = g.find_dart(NodeId(2), NodeId(1)).unwrap();
        let cf = net.cycle_table().cycle_following(ingress);
        assert_eq!(cf, net.routing().next_dart(NodeId(1), NodeId(0)).unwrap());
        let failed = LinkSet::from_links(g.link_count(), [cf.link()]);
        let mut state = PrHeader { pr: true, dd: 3 };
        let decision = agent.decide(NodeId(1), Some(ingress), NodeId(0), &mut state, &failed);
        match decision {
            ForwardDecision::Forward(d) => {
                assert!(state.pr, "fresh episode keeps the PR bit set");
                assert_eq!(state.dd, 1, "fresh episode stamps node 1's own discriminator");
                assert!(!failed.contains_dart(d));
            }
            other => panic!("expected Forward after re-stamp, got {other:?}"),
        }
    }

    #[test]
    fn dd_termination_resumes_when_strictly_closer() {
        // A 4-ring with a chord gives node 1 a live alternative after
        // termination: 0-1-2-3-0 plus chord 1-3. Routing 1→0 uses the
        // direct link; the cycle continuation entering 1 from 2 is a
        // different link, so we can fail just the continuation.
        let mut g = generators::ring(4, 1);
        g.add_link(NodeId(1), NodeId(3), 1).unwrap();
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&g);
        let ingress = g.find_dart(NodeId(2), NodeId(1)).unwrap();
        let cf = net.cycle_table().cycle_following(ingress);
        let routing = net.routing().next_dart(NodeId(1), NodeId(0)).unwrap();
        assert_ne!(cf.link(), routing.link(), "fixture: continuation differs from routing");
        let failed = LinkSet::from_links(g.link_count(), [cf.link()]);
        let mut state = PrHeader { pr: true, dd: 3 };
        let decision = agent.decide(NodeId(1), Some(ingress), NodeId(0), &mut state, &failed);
        assert_eq!(decision, ForwardDecision::Forward(routing));
        assert!(!state.pr, "termination must clear the PR bit");
        assert_eq!(state.dd, 0);
    }

    #[test]
    fn dd_equal_continues_cycle_following() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        // Same situation but stamped dd equal to the router's own:
        // §4.3 says "larger or equal → forward along the complementary
        // cycle of the failed interface".
        let ingress = g.find_dart(NodeId(2), NodeId(1)).unwrap();
        let cf = net.cycle_table().cycle_following(ingress);
        let failed = LinkSet::from_links(g.link_count(), [cf.link()]);
        let own = net.dd(NodeId(1), NodeId(0));
        let mut state = PrHeader { pr: true, dd: own };
        let decision = agent.decide(NodeId(1), Some(ingress), NodeId(0), &mut state, &failed);
        assert!(state.pr, "equal discriminator must continue cycle following");
        match decision {
            ForwardDecision::Forward(d) => assert!(!failed.contains_dart(d)),
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn header_bits_constant_in_dd_mode() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let agent = net.agent(&g);
        // Ring of 5, hop diameter 2 → 2 DD bits + PR bit = 3 bits.
        assert_eq!(net.codec().dd_bits(), 2);
        for dd in 0..3 {
            assert_eq!(agent.header_bits(&PrHeader { pr: true, dd }), 3);
        }
        assert!(net.codec().fits_in_dscp_pool2());
    }

    #[test]
    fn memory_footprint_reflects_topology() {
        let (g, net) = ring_net(PrMode::DistanceDiscriminator);
        let f = net.memory_footprint(&g, NodeId(0));
        assert_eq!(f, MemoryFootprint::per_router(2, 4));
    }
}
