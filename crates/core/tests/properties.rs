//! Property-based verification of the paper's §5 guarantees.
//!
//! **Scope of the guarantee — a reproduction finding.** The §5
//! correctness argument joins failed cells into regions and reasons
//! about curves crossing region boundaries "once going in, once going
//! out". That is Jordan-curve reasoning: it is valid on the **sphere**
//! (genus-0 embeddings). Exhaustive search over every rotation system
//! of K5 (see `examples/diagnose_genus_livelock.rs`) shows the claim
//! is *not* embedding-independent: on genus ≥ 1 embeddings PR can
//! livelock even though source and destination stay connected — even
//! with only a single failed link in basic mode. All three topologies
//! the paper evaluates on admit genus-0 embeddings (our `thorough`
//! search finds them), so the paper's results stand; the fine print is
//! that the guarantee is "for genus-0 embeddings", not "for any
//! cellular embedding".
//!
//! The tests below therefore verify:
//!
//! 1. the delivery theorem on **random planar-embedded graphs**
//!    (triangulations and outerplanar rings, embedding planar by
//!    construction);
//! 2. the basic-mode single-failure guarantee, same setting;
//! 3. stretch / header invariants;
//! 4. a **pinned counterexample** documenting the genus dependence.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pr_core::{
    generous_ttl, walk_packet, DiscriminatorKind, DropReason, PrMode, PrNetwork, WalkResult,
};
use pr_embedding::{planar, CellularEmbedding, RotationSystem};
use pr_graph::{algo, Graph, LinkId, LinkSet, NodeId, SpTree};

/// Random planar-embedded graph (two families) + non-disconnecting
/// failure set.
fn arb_planar_scenario() -> impl Strategy<Value = (Graph, RotationSystem, LinkSet)> {
    (0u64..u64::MAX, any::<bool>(), 0usize..20, 3usize..16, 0usize..7).prop_map(
        |(seed, dense, size, ring_n, failures)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, rot) = if dense {
                planar::random_triangulation(size, 1..=6, &mut rng)
            } else {
                planar::random_outerplanar(ring_n.max(3), 0.6, 1..=6, &mut rng)
            };
            let mut failed = LinkSet::empty(g.link_count());
            let mut candidates: Vec<LinkId> = g.links().collect();
            candidates.shuffle(&mut rng);
            for l in candidates {
                if failed.len() >= failures {
                    break;
                }
                if algo::connected_after(&g, &failed, l) {
                    failed.insert(l);
                }
            }
            (g, rot, failed)
        },
    )
}

fn deliver_all(g: &Graph, net: &PrNetwork, failed: &LinkSet) -> Result<(), String> {
    let agent = net.agent(g);
    let ttl = generous_ttl(g);
    for src in g.nodes() {
        for dst in g.nodes() {
            if src == dst {
                continue;
            }
            let walk = walk_packet(g, &agent, src, dst, failed, ttl);
            match walk.result {
                WalkResult::Delivered => {
                    if walk.path.darts().iter().any(|d| failed.contains_dart(*d)) {
                        return Err(format!("{src}->{dst}: delivered across a failed link"));
                    }
                }
                WalkResult::Dropped(reason) => {
                    return Err(format!(
                        "{src}->{dst} dropped ({reason}) with {} failures: {:?}",
                        failed.len(),
                        failed.iter().collect::<Vec<_>>()
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE theorem (§5.2/§5.3, genus-0 case): PR-DD delivers every
    /// connected pair under every sampled non-disconnecting failure
    /// set, with both discriminator functions.
    #[test]
    fn pr_dd_delivers_whenever_connected_planar((g, rot, failed) in arb_planar_scenario()) {
        for kind in [DiscriminatorKind::Hops, DiscriminatorKind::WeightedCost] {
            let emb = CellularEmbedding::new(&g, rot.clone()).unwrap();
            prop_assert_eq!(emb.genus(), 0, "planar generators must produce genus 0");
            let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, kind);
            if let Err(msg) = deliver_all(&g, &net, &failed) {
                prop_assert!(false, "[{}] {}", kind, msg);
            }
        }
    }

    /// §4.2 (genus-0 case): basic mode covers EVERY single link
    /// failure on 2-edge-connected planar-embedded graphs.
    #[test]
    fn pr_basic_covers_all_single_failures_planar((g, rot, _) in arb_planar_scenario()) {
        let none = LinkSet::empty(g.link_count());
        prop_assume!(algo::is_two_edge_connected(&g, &none));
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let net = PrNetwork::compile(&g, emb, PrMode::Basic, DiscriminatorKind::Hops);
        for l in g.links() {
            let failed = LinkSet::from_links(g.link_count(), [l]);
            if let Err(msg) = deliver_all(&g, &net, &failed) {
                prop_assert!(false, "single failure {}: {}", l, msg);
            }
        }
    }

    /// Delivered PR paths cost at least the surviving optimum, stretch
    /// ≥ 1 against the failure-free optimum, and the header never
    /// exceeds the compiled constant width.
    #[test]
    fn stretch_and_header_invariants((g, rot, failed) in arb_planar_scenario()) {
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&g);
        let ttl = generous_ttl(&g);
        let expected_bits = usize::from(net.codec().total_bits());
        for dst in g.nodes() {
            let live_tree = SpTree::towards(&g, dst, &failed);
            let base_tree = SpTree::towards(&g, dst, &LinkSet::empty(g.link_count()));
            for src in g.nodes() {
                if src == dst {
                    continue;
                }
                let walk = walk_packet(&g, &agent, src, dst, &failed, ttl);
                prop_assert!(walk.result.is_delivered());
                prop_assert!(walk.peak_header_bits <= expected_bits);
                let taken = walk.cost(&g);
                prop_assert!(taken >= live_tree.cost(src).unwrap());
                let s = walk.stretch(&g, base_tree.cost(src).unwrap()).unwrap();
                prop_assert!(s >= 1.0);
            }
        }
    }

    /// With no failures, PR forwards exactly along the canonical
    /// shortest paths: the scheme is invisible in the failure-free
    /// case ("allows normal routing operations in failure-free
    /// scenarios"). This invariant is embedding-independent, so it
    /// runs on arbitrary random rotation systems, not just planar.
    #[test]
    fn no_failures_means_plain_shortest_paths(
        seed in 0u64..u64::MAX, n in 3usize..14, chords in 0usize..8
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = pr_graph::generators::random_two_edge_connected(n, chords, 1..=6, &mut rng);
        let rot = RotationSystem::random(&g, &mut rng);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&g);
        let none = LinkSet::empty(g.link_count());
        for dst in g.nodes() {
            let tree = SpTree::towards(&g, dst, &none);
            for src in g.nodes() {
                if src == dst {
                    continue;
                }
                let walk = walk_packet(&g, &agent, src, dst, &none, generous_ttl(&g));
                prop_assert!(walk.result.is_delivered());
                let canonical = tree.path_darts(&g, src).unwrap();
                prop_assert_eq!(
                    walk.path.darts(),
                    canonical.as_slice(),
                    "failure-free PR must equal the canonical shortest path"
                );
            }
        }
    }

    /// When failures disconnect src from dst, PR never delivers across
    /// the cut and never claims success: packets end in a detected
    /// loop or isolation (embedding-independent).
    #[test]
    fn disconnection_is_detected_not_miracled(seed in 0u64..u64::MAX, n in 4usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = pr_graph::generators::random_two_edge_connected(n, 2, 1..=4, &mut rng);
        let victim = NodeId(rng.gen_range(0..n as u32));
        let mut failed = LinkSet::empty(g.link_count());
        for &d in g.darts_from(victim) {
            failed.insert(d.link());
        }
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&g);
        for src in g.nodes() {
            if src == victim {
                continue;
            }
            let walk = walk_packet(&g, &agent, src, victim, &failed, generous_ttl(&g));
            match walk.result {
                WalkResult::Dropped(DropReason::ForwardingLoop | DropReason::Isolated) => {}
                other => prop_assert!(false, "{}->{}: expected loop/isolated, got {:?}", src, victim, other),
            }
        }
    }
}

/// **Pinned finding**: the delivery guarantee is genus-dependent. On
/// K5 (orientable genus 1 — no planar embedding exists) there are
/// minimum-genus rotation systems and non-disconnecting 3-failure sets
/// for which PR-DD livelocks. The §5 region-boundary argument is a
/// sphere argument and does not carry over to positive genus.
///
/// (Exhaustive data: of K5's 7776 rotation systems, every one has
/// genus ≥ 1, and a substantial fraction at each genus livelocks on
/// this failure set — run `cargo run --release -p pr-core --example
/// diagnose_genus_livelock` for the table.)
#[test]
fn k5_genus_one_counterexample_livelocks() {
    let mut g = Graph::new();
    for i in 0..5 {
        g.add_node(format!("{i}"));
    }
    let links = [
        (3, 4, 2),
        (4, 2, 4),
        (2, 0, 1),
        (0, 1, 3),
        (1, 3, 3),
        (2, 3, 2),
        (2, 1, 6),
        (0, 3, 3),
        (0, 4, 2),
        (4, 1, 5),
    ];
    for (a, b, w) in links {
        g.add_link(NodeId(a), NodeId(b), w).unwrap();
    }
    let failed = LinkSet::from_links(g.link_count(), [LinkId(1), LinkId(2), LinkId(4)]);
    assert!(algo::is_connected(&g, &failed), "the failure set must not disconnect K5");

    // Find a livelocking rotation by scanning random rotation systems
    // (the diagnostic example shows ~1/3 of them livelock, so this
    // terminates almost immediately).
    let mut rng = StdRng::seed_from_u64(1);
    let mut found_livelock = false;
    let mut found_genus = 0;
    for _ in 0..200 {
        let rot = RotationSystem::random(&g, &mut rng);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let genus = emb.genus();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&g);
        let mut livelocked = false;
        for src in g.nodes() {
            for dst in g.nodes() {
                if src == dst {
                    continue;
                }
                let walk = walk_packet(&g, &agent, src, dst, &failed, generous_ttl(&g));
                if walk.result == WalkResult::Dropped(DropReason::ForwardingLoop) {
                    livelocked = true;
                }
            }
        }
        if livelocked {
            found_livelock = true;
            found_genus = genus;
            break;
        }
    }
    assert!(found_livelock, "expected to find a livelocking rotation system of K5 (genus >= 1)");
    assert!(found_genus >= 1, "K5 has no genus-0 rotation system");
}

/// Exhaustive (not sampled) check on the three ISP topologies with
/// production (`thorough`, genus-0) embeddings: every single link
/// failure, every (src, dst) pair, both modes.
#[test]
fn isp_topologies_single_failure_exhaustive() {
    for isp in pr_topologies::Isp::ALL {
        let g = pr_topologies::load(isp, pr_topologies::Weighting::Distance);
        let rot = pr_embedding::heuristics::thorough(&g, 2010, 8, 60_000);
        for mode in [PrMode::Basic, PrMode::DistanceDiscriminator] {
            let emb = CellularEmbedding::new(&g, rot.clone()).unwrap();
            assert_eq!(emb.genus(), 0, "{isp}: thorough search must find the planar embedding");
            let net = PrNetwork::compile(&g, emb, mode, DiscriminatorKind::Hops);
            for l in g.links() {
                let failed = LinkSet::from_links(g.link_count(), [l]);
                deliver_all(&g, &net, &failed)
                    .unwrap_or_else(|msg| panic!("{isp} [{mode}] failing {l}: {msg}"));
            }
        }
    }
}

/// Exhaustive dual-failure check on Abilene: every non-disconnecting
/// pair of links must deliver under PR-DD.
#[test]
fn abilene_dual_failures_exhaustive() {
    let g = pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
    let rot = pr_embedding::heuristics::thorough(&g, 2010, 4, 20_000);
    let emb = CellularEmbedding::new(&g, rot).unwrap();
    assert_eq!(emb.genus(), 0);
    let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let mut checked = 0;
    for l1 in g.links() {
        for l2 in g.links() {
            if l2.index() <= l1.index() {
                continue;
            }
            let failed = LinkSet::from_links(g.link_count(), [l1, l2]);
            if !algo::is_connected(&g, &failed) {
                continue;
            }
            deliver_all(&g, &net, &failed)
                .unwrap_or_else(|msg| panic!("abilene failing {{{l1},{l2}}}: {msg}"));
            checked += 1;
        }
    }
    assert!(checked > 50, "expected most dual-failure combinations to be connected");
}
