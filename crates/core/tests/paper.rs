//! Paper-anchored tests: reproduce Table 1 and the §4.2/§4.3
//! walkthroughs of Figure 1 *exactly* as printed.
//!
//! These tests pin the implementation to the paper's semantics: if a
//! refactor changes the interpretation of cycle following tables or of
//! the termination conditions, they fail with the divergent node
//! sequence.

use pr_core::{
    generous_ttl, walk_packet, DiscriminatorKind, ForwardDecision, ForwardingAgent, PrHeader,
    PrMode, PrNetwork, WalkResult,
};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::{Dart, Graph, LinkSet, NodeId};
use pr_topologies::figure1;

fn build(mode: PrMode) -> (Graph, PrNetwork) {
    let (g, orders) = figure1();
    let rot = RotationSystem::from_neighbor_orders(&g, &orders).unwrap();
    let emb = CellularEmbedding::new(&g, rot).unwrap();
    let net = PrNetwork::compile(&g, emb, mode, DiscriminatorKind::Hops);
    (g, net)
}

fn n(g: &Graph, s: &str) -> NodeId {
    g.node_by_name(s).unwrap()
}

fn dart(g: &Graph, a: &str, b: &str) -> Dart {
    g.find_dart(n(g, a), n(g, b)).unwrap()
}

/// Paper Table 1: the cycle following table at node D.
///
/// | Incoming | Cycle Following | Complementary |
/// |----------|-----------------|---------------|
/// | I_BD     | I_DF (c4)       | I_DE (c1)     |
/// | I_ED     | I_DB (c2)       | I_DF (c4)     |
/// | I_FD     | I_DE (c1)       | I_DB (c2)     |
#[test]
fn table1_at_node_d() {
    let (g, net) = build(PrMode::DistanceDiscriminator);
    let ct = net.cycle_table();

    let expect = [
        ("B", "F", "E"), // I_BD -> I_DF / I_DE
        ("E", "B", "F"), // I_ED -> I_DB / I_DF
        ("F", "E", "B"), // I_FD -> I_DE / I_DB
    ];
    for (from, cf_to, comp_to) in expect {
        let incoming = dart(&g, from, "D");
        assert_eq!(
            ct.cycle_following(incoming),
            dart(&g, "D", cf_to),
            "row I_{from}D cycle-following column"
        );
        assert_eq!(
            ct.complementary(incoming),
            dart(&g, "D", comp_to),
            "row I_{from}D complementary column"
        );
    }

    // The rows_at view is sorted by incoming neighbour (B, E, F) —
    // exactly the paper's row order.
    let rows = ct.rows_at(&g, n(&g, "D"));
    let incoming_names: Vec<&str> =
        rows.iter().map(|r| g.node_name(g.dart_tail(r.incoming))).collect();
    assert_eq!(incoming_names, vec!["B", "E", "F"]);

    // The paper annotates each outgoing interface with its cycle
    // (c1–c4). The c-numbers themselves are arbitrary labels, so assert
    // the structural facts they encode instead: D→E's main cycle is
    // complementary to D→B's over link D–E (the paper's c1/c2 pair),
    // and each complementary-column entry is the first hop of the
    // complementary cycle of the cycle-following column's link.
    let emb = net.embedding();
    let c1 = emb.main_cycle(dart(&g, "D", "E"));
    let c2 = emb.main_cycle(dart(&g, "E", "D"));
    assert_eq!(emb.main_cycle(dart(&g, "D", "B")), c2, "D→B lies on c2");
    assert_eq!(emb.complementary_cycle(dart(&g, "D", "E")), c2);
    assert_eq!(emb.complementary_cycle(dart(&g, "E", "D")), c1);
    for row in rows {
        let cf = row.cycle_following;
        assert_eq!(row.complementary, emb.deflection(cf));
        assert_eq!(
            emb.main_cycle(row.complementary),
            emb.complementary_cycle(cf),
            "complementary column must continue the complementary cycle"
        );
    }
}

/// §4.2 / Figure 1(b): single failure D–E, packet A → F.
///
/// "the packet would be forwarded along A → B and B → D ... since link
/// D → E is down, node D sets the PR bit ... and forwards it to IDB.
/// ... routers B and C ... forward it using their normal cycle
/// following tables, so that it follows cycle c2 ... Once the packet
/// arrives at node E ... the PR bit is cleared and the packet forwarded
/// to node F via the conventional shortest path."
#[test]
fn figure_1b_single_failure_walkthrough() {
    let (g, net) = build(PrMode::DistanceDiscriminator);
    let agent = net.agent(&g);
    let de = g.find_link(n(&g, "D"), n(&g, "E")).unwrap();
    let failed = LinkSet::from_links(g.link_count(), [de]);

    let walk = walk_packet(&g, &agent, n(&g, "A"), n(&g, "F"), &failed, generous_ttl(&g));
    assert!(walk.result.is_delivered());
    assert_eq!(
        walk.path.display(&g, n(&g, "A")),
        "A -> B -> D -> B -> C -> E -> F",
        "node sequence must match the §4.2 walkthrough"
    );
}

/// The same scenario must also work in basic (§4.2, single-bit) mode:
/// single failures need no DD bits.
#[test]
fn figure_1b_works_in_basic_mode() {
    let (g, net) = build(PrMode::Basic);
    let agent = net.agent(&g);
    let de = g.find_link(n(&g, "D"), n(&g, "E")).unwrap();
    let failed = LinkSet::from_links(g.link_count(), [de]);
    let walk = walk_packet(&g, &agent, n(&g, "A"), n(&g, "F"), &failed, generous_ttl(&g));
    assert!(walk.result.is_delivered());
    assert_eq!(walk.path.display(&g, n(&g, "A")), "A -> B -> D -> B -> C -> E -> F");
    assert_eq!(walk.peak_header_bits, 1, "basic mode uses exactly one header bit");
}

/// §4.2's second example: failures on both A–B and D–E. "packets would
/// first follow cycle c3 (complementary to c4 over A → B) to reach B,
/// where normal routing would resume - only to fail again in D."
#[test]
fn figure_1b_dual_failure_example() {
    let (g, net) = build(PrMode::DistanceDiscriminator);
    let agent = net.agent(&g);
    let de = g.find_link(n(&g, "D"), n(&g, "E")).unwrap();
    let ab = g.find_link(n(&g, "A"), n(&g, "B")).unwrap();
    let failed = LinkSet::from_links(g.link_count(), [de, ab]);

    let walk = walk_packet(&g, &agent, n(&g, "A"), n(&g, "F"), &failed, generous_ttl(&g));
    assert!(walk.result.is_delivered());
    // A deflects onto c3 (A → C), reaches B via C, resumes routing,
    // fails again at D, and recovers exactly as in Figure 1(b).
    assert_eq!(
        walk.path.display(&g, n(&g, "A")),
        "A -> C -> B -> D -> B -> C -> E -> F",
        "node sequence must match §4.2's multi-failure example"
    );
}

/// §4.3 / Figure 1(c): failures D–E and B–C, packet A → F, with the
/// decreasing-distance termination condition. The paper's walkthrough,
/// verbatim:
///
/// * D detects D→E down: PR bit set, DD := 2, forward over I_DB (c2);
/// * B cannot forward over B→C: own DD (3) ≥ 2 → cycle following over
///   I_BA (c3);
/// * A forwards (cycle following) to C;
/// * C cannot forward over I_CB: own DD (2) ≥ 2 → follow c2 to E;
/// * E cannot forward over I_ED: own DD (1) < 2 → clear PR, deliver
///   via shortest path E → F.
#[test]
fn figure_1c_multi_failure_walkthrough() {
    let (g, net) = build(PrMode::DistanceDiscriminator);
    let agent = net.agent(&g);
    let de = g.find_link(n(&g, "D"), n(&g, "E")).unwrap();
    let bc = g.find_link(n(&g, "B"), n(&g, "C")).unwrap();
    let failed = LinkSet::from_links(g.link_count(), [de, bc]);

    let walk = walk_packet(&g, &agent, n(&g, "A"), n(&g, "F"), &failed, generous_ttl(&g));
    assert!(walk.result.is_delivered(), "got {:?}", walk.result);
    assert_eq!(
        walk.path.display(&g, n(&g, "A")),
        "A -> B -> D -> B -> A -> C -> E -> F",
        "node sequence must match the §4.3 walkthrough"
    );
}

/// Step-level check of the §4.3 walkthrough: the DD stamp placed by D
/// is exactly 2, B and C decide "continue", E decides "terminate".
#[test]
fn figure_1c_dd_decisions_are_the_papers() {
    let (g, net) = build(PrMode::DistanceDiscriminator);
    let agent = net.agent(&g);
    let de = g.find_link(n(&g, "D"), n(&g, "E")).unwrap();
    let bc = g.find_link(n(&g, "B"), n(&g, "C")).unwrap();
    let failed = LinkSet::from_links(g.link_count(), [de, bc]);

    // At D (arriving from B, PR clear): D stamps its own hop count, 2.
    let mut state = PrHeader::default();
    let decision =
        agent.decide(n(&g, "D"), Some(dart(&g, "B", "D")), n(&g, "F"), &mut state, &failed);
    assert_eq!(decision, ForwardDecision::Forward(dart(&g, "D", "B")));
    assert!(state.pr);
    assert_eq!(state.dd, 2, "the paper stamps DD = 2 at D");

    // At B (arriving from D, PR set, DD=2): B's own DD is 3 ≥ 2 →
    // continue over I_BA.
    let mut state = PrHeader { pr: true, dd: 2 };
    let decision =
        agent.decide(n(&g, "B"), Some(dart(&g, "D", "B")), n(&g, "F"), &mut state, &failed);
    assert_eq!(decision, ForwardDecision::Forward(dart(&g, "B", "A")));
    assert!(state.pr);

    // At C (arriving from A, PR set): continuation I_CB failed; C's own
    // DD is 2 ≥ 2 → continue over I_CE (cycle c2).
    let mut state = PrHeader { pr: true, dd: 2 };
    let decision =
        agent.decide(n(&g, "C"), Some(dart(&g, "A", "C")), n(&g, "F"), &mut state, &failed);
    assert_eq!(decision, ForwardDecision::Forward(dart(&g, "C", "E")));
    assert!(state.pr);

    // At E (arriving from C, PR set): continuation I_ED failed; E's own
    // DD is 1 < 2 → clear PR and resume shortest path to F.
    let mut state = PrHeader { pr: true, dd: 2 };
    let decision =
        agent.decide(n(&g, "E"), Some(dart(&g, "C", "E")), n(&g, "F"), &mut state, &failed);
    assert_eq!(decision, ForwardDecision::Forward(dart(&g, "E", "F")));
    assert!(!state.pr, "E terminates cycle following");
}

/// §4.3's motivation: without DD bits (basic mode), the Figure 1(c)
/// scenario loops forever. Our walker must detect the livelock
/// *exactly* (not just via TTL).
#[test]
fn figure_1c_loops_in_basic_mode() {
    let (g, net) = build(PrMode::Basic);
    let agent = net.agent(&g);
    let de = g.find_link(n(&g, "D"), n(&g, "E")).unwrap();
    let bc = g.find_link(n(&g, "B"), n(&g, "C")).unwrap();
    let failed = LinkSet::from_links(g.link_count(), [de, bc]);

    let walk = walk_packet(&g, &agent, n(&g, "A"), n(&g, "F"), &failed, generous_ttl(&g));
    assert_eq!(
        walk.result,
        WalkResult::Dropped(pr_core::DropReason::ForwardingLoop),
        "the paper's Figure 1(c) forwarding loop must be detected"
    );
}

/// §6 header sizing on the Figure 1 network: hop diameter 4 (A is 4
/// hops from F) → 3 DD bits; with the PR bit, 4 bits — exactly the
/// DSCP pool-2 capacity the paper proposes using.
#[test]
fn figure_1_header_fits_dscp_pool2() {
    let (_, net) = build(PrMode::DistanceDiscriminator);
    assert_eq!(net.routing().max_discriminator(DiscriminatorKind::Hops), 4);
    assert_eq!(net.codec().dd_bits(), 3);
    assert_eq!(net.codec().total_bits(), 4);
    assert!(net.codec().fits_in_dscp_pool2());
}

/// The rendered Table 1 mentions every interface of D in the paper's
/// notation.
#[test]
fn table1_renders_in_paper_notation() {
    let (g, net) = build(PrMode::DistanceDiscriminator);
    let text = net.cycle_table().display_at(&g, net.embedding(), n(&g, "D"));
    for iface in ["I_BD", "I_ED", "I_FD", "I_DB", "I_DE", "I_DF"] {
        assert!(text.contains(iface), "rendered table missing {iface}:\n{text}");
    }
}
