//! Diagnostic: does PR-DD's delivery guarantee depend on the genus of
//! the embedding?
//!
//! Rebuilds the minimal counterexample proptest found (5 nodes, 10
//! links, 3 failures), then enumerates EVERY rotation system of the
//! graph, recording for each its genus and whether any (src, dst) pair
//! livelocks. Prints the contingency table.

use pr_core::{generous_ttl, walk_packet, DiscriminatorKind, PrMode, PrNetwork, WalkResult};
use pr_embedding::{genus, CellularEmbedding, FaceStructure, RotationSystem};
use pr_graph::{Dart, Graph, LinkSet, NodeId};

fn main() {
    let mut g = Graph::new();
    for i in 0..5 {
        g.add_node(format!("{i}"));
    }
    let links = [
        (3, 4, 2),
        (4, 2, 4),
        (2, 0, 1),
        (0, 1, 3),
        (1, 3, 3),
        (2, 3, 2),
        (2, 1, 6),
        (0, 3, 3),
        (0, 4, 2),
        (4, 1, 5),
    ];
    for (a, b, w) in links {
        g.add_link(NodeId(a), NodeId(b), w).unwrap();
    }
    let failed = LinkSet::from_links(
        g.link_count(),
        [pr_graph::LinkId(1), pr_graph::LinkId(2), pr_graph::LinkId(4)],
    );
    assert!(pr_graph::algo::is_connected(&g, &failed));

    // Enumerate rotation systems: per node, fix the first dart and
    // permute the rest.
    let base: Vec<Vec<Dart>> = g.nodes().map(|n| g.darts_from(n).to_vec()).collect();
    let mut orders = base.clone();
    let mut stats: std::collections::BTreeMap<u32, (u64, u64)> = Default::default();
    let mut example_loop: Option<(u32, Vec<Vec<Dart>>)> = None;
    enumerate(&base, &mut orders, 0, &mut |orders| {
        let rot = RotationSystem::from_orders(&g, orders).unwrap();
        let gen = genus(&g, &FaceStructure::trace(&g, &rot)).unwrap();
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&g);
        let mut looped = false;
        'outer: for src in g.nodes() {
            for dst in g.nodes() {
                if src == dst {
                    continue;
                }
                let walk = walk_packet(&g, &agent, src, dst, &failed, generous_ttl(&g));
                if !matches!(walk.result, WalkResult::Delivered) {
                    looped = true;
                    break 'outer;
                }
            }
        }
        let e = stats.entry(gen).or_insert((0, 0));
        if looped {
            e.1 += 1;
            if example_loop.is_none() {
                example_loop = Some((gen, orders.clone()));
            }
        } else {
            e.0 += 1;
        }
    });

    println!("genus  delivered-all  livelocked");
    for (gen, (ok, bad)) in &stats {
        println!("{gen:>5}  {ok:>13}  {bad:>10}");
    }
    if let Some((gen, orders)) = example_loop {
        println!("\nfirst livelocking rotation (genus {gen}):");
        for (i, o) in orders.iter().enumerate() {
            let names: Vec<String> =
                o.iter().map(|&d| format!("{}->{}", g.dart_tail(d).0, g.dart_head(d).0)).collect();
            println!("  node {i}: {}", names.join(", "));
        }
    }
}

fn enumerate(
    base: &[Vec<Dart>],
    orders: &mut Vec<Vec<Dart>>,
    node: usize,
    visit: &mut impl FnMut(&Vec<Vec<Dart>>),
) {
    if node == base.len() {
        visit(orders);
        return;
    }
    let degree = base[node].len();
    if degree <= 2 {
        enumerate(base, orders, node + 1, visit);
        return;
    }
    let mut idx: Vec<usize> = (1..degree).collect();
    permute(&mut idx, 0, &mut |p| {
        orders[node][0] = base[node][0];
        for (slot, &src) in p.iter().enumerate() {
            orders[node][slot + 1] = base[node][src];
        }
        enumerate(base, orders, node + 1, visit);
    });
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}
