//! Property-based equivalence of suffix-memoized walks and plain
//! walks — the correctness contract behind `walk_packet_spliced`.
//!
//! Over random 2-edge-connected graphs and random (scenario, dest)
//! work units, every affected source is walked both ways for both
//! stateful agents the stretch sweep runs (FCP and PR-DD). The
//! memoized walk must agree with the plain walk outcome-for-outcome
//! and cost-for-cost — including under a TTL tight enough that the
//! remaining-steps guard has to reject splices and keep walking.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pr_baselines::FcpAgent;
use pr_core::{
    generous_ttl, walk_packet_spliced, walk_packet_with, DiscriminatorKind, ForwardingAgent,
    PrMode, PrNetwork, SuffixMemo, WalkScratch,
};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::{generators, AllPairs, Graph, LinkId, LinkSet, NodeId};

/// A reproducible random 2-edge-connected graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..16, 0usize..8, 0u64..u64::MAX).prop_map(|(n, chords, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_two_edge_connected(n, chords, 1..=8, &mut rng)
    })
}

/// PR-DD over the identity rotation (any genus — livelock drops are
/// legitimate outcomes and must agree between the two walkers too).
fn compile_net(g: &Graph) -> PrNetwork {
    let emb = CellularEmbedding::new(g, RotationSystem::identity(g)).expect("connected");
    PrNetwork::compile(g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops)
}

/// Walks every affected source of one unit both ways and asserts
/// bit-identical projections. Returns the longest delivered plain walk
/// (in steps), for deriving tight TTLs.
#[allow(clippy::too_many_arguments)]
fn check_unit<A: ForwardingAgent>(
    g: &Graph,
    agent: &A,
    sources: &[NodeId],
    dst: NodeId,
    failed: &LinkSet,
    ttl: usize,
    scratch: &mut WalkScratch<A::State>,
    memo: &mut SuffixMemo<A::State>,
) -> Result<usize, TestCaseError>
where
    A::State: std::hash::Hash + Eq,
{
    let mut plain_scratch = WalkScratch::new();
    let mut longest = 0;
    for &src in sources {
        let plain = walk_packet_with(g, agent, src, dst, failed, ttl, &mut plain_scratch);
        let spliced = walk_packet_spliced(g, agent, src, dst, failed, ttl, scratch, memo);
        let label = format!("{} {src}->{dst} ttl={ttl} failed={failed:?}", agent.label());
        prop_assert_eq!(&spliced.result, &plain.result, "{}", label);
        prop_assert_eq!(spliced.cost, plain.cost(g), "{}", label);
        prop_assert_eq!(spliced.steps, plain.path.hop_count(), "{}", label);
        if plain.result.is_delivered() {
            longest = longest.max(plain.path.hop_count());
        }
    }
    Ok(longest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memoized walks ≡ plain walks, across random (scenario, dest)
    /// units, for FCP and PR-DD, at a generous TTL and then at TTLs
    /// tight enough (longest−1, half, 1) that memo entries seeded by
    /// the generous pass fail the remaining-steps guard mid-walk.
    #[test]
    fn memoized_walks_equal_plain_walks(g in arb_graph(), seed in 0u64..u64::MAX) {
        let net = compile_net(&g);
        let pr_agent = net.agent(&g);
        let fcp = FcpAgent::new(&g);
        let generous = generous_ttl(&g);
        let base = AllPairs::compute_all_live(&g);
        let mut rng = StdRng::seed_from_u64(seed);

        let mut pr_scratch = WalkScratch::new();
        let mut fcp_scratch = WalkScratch::new();
        let mut pr_memo = SuffixMemo::new();
        let mut fcp_memo = SuffixMemo::new();
        let mut sources_walked = 0usize;

        for _ in 0..6 {
            // One random unit: 1–2 failed links, one destination.
            let k = rng.gen_range(1..=2usize);
            let mut failed = LinkSet::empty(g.link_count());
            for _ in 0..k {
                failed.insert(LinkId(rng.gen_range(0..g.link_count() as u32)));
            }
            let dst = NodeId(rng.gen_range(0..g.node_count() as u32));
            let base_tree = base.towards(dst);
            let sources: Vec<NodeId> = g
                .nodes()
                .filter(|&src| src != dst && base_tree.path_crosses(&g, src, &failed))
                .collect();
            sources_walked += sources.len();

            // Unit boundary: evict, then reuse the memos for every
            // TTL pass of this unit (suffix facts are TTL-invariant).
            pr_memo.begin_unit();
            fcp_memo.begin_unit();
            let longest = check_unit(
                &g, &pr_agent, &sources, dst, &failed, generous, &mut pr_scratch, &mut pr_memo,
            )?;
            let longest_fcp = check_unit(
                &g, &fcp, &sources, dst, &failed, generous, &mut fcp_scratch, &mut fcp_memo,
            )?;
            for tight in [
                longest.saturating_sub(1),
                longest / 2,
                longest_fcp.saturating_sub(1),
                1,
            ] {
                check_unit(
                    &g, &pr_agent, &sources, dst, &failed, tight, &mut pr_scratch, &mut pr_memo,
                )?;
                check_unit(
                    &g, &fcp, &sources, dst, &failed, tight, &mut fcp_scratch, &mut fcp_memo,
                )?;
            }
        }

        // Guard against vacuity: whenever anything was walked, the
        // memo must at least have been consulted (every walked hop of
        // a source ≠ dest performs one lookup).
        let pr_stats = pr_memo.take_stats();
        let fcp_stats = fcp_memo.take_stats();
        if sources_walked > 0 {
            prop_assert!(pr_stats.lookups > 0);
            prop_assert!(fcp_stats.lookups > 0);
        }
    }
}
