//! The engine's contract: parallel sweeps are **bit-identical** to the
//! serial reference, regardless of thread count.
//!
//! `coverage::run` / `stretch::run` fan (scenario × destination) work
//! units over a racing worker pool, use per-worker FCP route caches,
//! and merge partial results by unit index; `run_serial` is the plain
//! nested loop with the honest recompute-per-decision FCP agent.
//! `temporal::run` fans one discrete-event simulation pair per timed
//! scenario with per-scenario derived seeds. Any divergence — a
//! reordered sample, a cache changing a decision, a shared RNG stream,
//! a lost unit — fails these tests exactly.

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::Graph;
use pr_scenarios::{
    DetectionDelaySweep, FlapSweep, NodeFailures, OutageParams, OutageSweep, SampledMultiFailures,
    ScenarioFamily, SingleLinkFailures, TemporalFamily,
};
use pr_sim::SimConfig;
use pr_topologies::{Isp, Weighting};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SEEDS: [u64; 2] = [7, 2010];

/// A cheap (not necessarily genus-0) embedding: determinism must hold
/// on livelock-prone embeddings too, where walks end in loop drops.
fn identity_embedding(graph: &Graph) -> CellularEmbedding {
    CellularEmbedding::new(graph, RotationSystem::identity(graph)).expect("connected topology")
}

/// A genus-0 embedding like the experiments use (cheap search budget).
fn planar_embedding(graph: &Graph, seed: u64) -> CellularEmbedding {
    let rot = pr_embedding::heuristics::thorough(graph, seed, 4, 10_000);
    CellularEmbedding::new(graph, rot).expect("connected topology")
}

fn coverage_is_deterministic_on(graph: &Graph, embedding: &CellularEmbedding) {
    for seed in SEEDS {
        let reference = pr_bench::coverage::run_serial(graph, embedding, 2, 5, seed);
        for threads in THREAD_COUNTS {
            let rows = pr_bench::coverage::run(graph, embedding, 2, 5, seed, threads);
            assert_eq!(
                rows, reference,
                "coverage rows diverged from serial at seed {seed}, {threads} threads"
            );
        }
    }
}

fn stretch_is_deterministic_on(graph: &Graph, pr: &PrNetwork, family: &dyn ScenarioFamily) {
    let reference = pr_bench::stretch::run_serial(graph, pr, family);
    for threads in THREAD_COUNTS {
        let samples = pr_bench::stretch::run(graph, pr, family, threads);
        // Full struct equality: f64 sample vectors compare bit-for-bit
        // (every value is produced by the identical expression on the
        // identical walk, in the identical order).
        assert_eq!(
            samples,
            reference,
            "stretch samples diverged at {threads} threads ({})",
            family.label()
        );
    }
}

#[test]
fn abilene_coverage_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    coverage_is_deterministic_on(&g, &planar_embedding(&g, 2010));
}

#[test]
fn teleglobe_coverage_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Teleglobe, Weighting::Distance);
    // Identity embedding: positive genus, so PR-basic (and possibly
    // PR-DD) livelock on some pairs — drops must merge identically too.
    coverage_is_deterministic_on(&g, &identity_embedding(&g));
}

#[test]
fn abilene_stretch_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let emb = planar_embedding(&g, 2010);
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    // Exhaustive single failures, streamed…
    stretch_is_deterministic_on(&g, &pr, &SingleLinkFailures::new(&g));
    // …node failures, streamed…
    stretch_is_deterministic_on(&g, &pr, &NodeFailures::new(&g));
    // …and sampled multi-failures at several seeds.
    for seed in SEEDS {
        let multi = SampledMultiFailures::new(&g, 3, 6, seed);
        stretch_is_deterministic_on(&g, &pr, &multi);
    }
}

#[test]
fn teleglobe_stretch_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Teleglobe, Weighting::Distance);
    let emb = planar_embedding(&g, 2010);
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    for seed in SEEDS {
        let multi = SampledMultiFailures::new(&g, 2, 5, seed);
        stretch_is_deterministic_on(&g, &pr, &multi);
    }
}

/// The PR 8 acceptance criterion in miniature: per-scenario aggregates
/// from the suffix-**memoized** walk engine (`run_rows`, what `pr
/// sweep` ships) must be bit-identical to the unmemoized path
/// (`run_rows_plain`) at 1/2/4 threads. The isp-1000 exhaustive sweep
/// this gates is too slow for tier-1, so a 120-node instance of the
/// same synthetic ISP family stands in; the equivalence argument
/// (DESIGN.md §14) is size-independent.
#[test]
fn synth_mesh_memoized_rows_equal_plain_rows() {
    let g = pr_graph::generators::isp_mesh(&pr_graph::generators::MeshParams::new(120, 2010));
    let rot = pr_embedding::RotationSystem::geometric(&g).expect("mesh has coordinates");
    let emb = CellularEmbedding::new(&g, rot).expect("connected topology");
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let singles = SingleLinkFailures::new(&g);
    let reference = pr_bench::stretch::run_rows_plain(&g, &pr, &singles, 1, 0);
    for threads in THREAD_COUNTS {
        let memoized = pr_bench::stretch::run_rows(&g, &pr, &singles, threads, 0);
        assert_eq!(
            memoized, reference,
            "memoized ScenarioRows diverged from the plain walker at {threads} threads"
        );
        let plain = pr_bench::stretch::run_rows_plain(&g, &pr, &singles, threads, 0);
        assert_eq!(
            plain, reference,
            "plain ScenarioRows diverged across thread counts at {threads} threads"
        );
    }
}

// ---- temporal sweeps ---------------------------------------------------

/// Abilene with its certified embedding, cheap search budget.
fn abilene_net() -> (Graph, PrNetwork) {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let emb = planar_embedding(&g, 2010);
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    (g, pr)
}

/// Sweep-friendly outage parameters (short flows keep the test quick).
fn quick_params() -> OutageParams {
    OutageParams {
        interval_ns: 500_000, // 2 kpps
        fail_at_ns: 10_000_000,
        down_for_ns: 40_000_000,
        igp_convergence_ns: 40_000_000,
        duration_ns: 80_000_000,
        ..OutageParams::default()
    }
}

fn temporal_is_deterministic_on(graph: &Graph, pr: &PrNetwork, family: &dyn TemporalFamily) {
    let config = SimConfig::default();
    for seed in SEEDS {
        let reference = pr_bench::temporal::run_serial(graph, pr, family, &config, seed);
        assert_eq!(reference.len(), family.len());
        for threads in THREAD_COUNTS {
            let rows = pr_bench::temporal::run(graph, pr, family, &config, seed, threads);
            assert_eq!(
                rows,
                reference,
                "temporal rows diverged from serial at seed {seed}, {threads} threads ({})",
                family.label()
            );
        }
    }
}

#[test]
fn abilene_outage_sweep_parallel_equals_serial() {
    let (g, pr) = abilene_net();
    temporal_is_deterministic_on(&g, &pr, &OutageSweep::new(&g, quick_params()));
}

#[test]
fn abilene_flap_sweep_parallel_equals_serial() {
    let (g, pr) = abilene_net();
    let fam = FlapSweep::new(&g, quick_params()).with_holddown(8_000_000);
    temporal_is_deterministic_on(&g, &pr, &fam);
}

#[test]
fn abilene_detection_delay_sweep_parallel_equals_serial() {
    let (g, pr) = abilene_net();
    let link = g.links().next().unwrap();
    let fam =
        DetectionDelaySweep::new(&g, link, vec![0, 100_000, 1_000_000, 10_000_000], quick_params());
    temporal_is_deterministic_on(&g, &pr, &fam);
}

// ---- traffic replay ----------------------------------------------------

use pr_traffic::{FlowSet, GravityTraffic, HotspotTraffic, UniformTraffic};

fn traffic_is_deterministic_on(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    flows: &FlowSet,
) {
    // The serial reference replays every flow one packet at a time
    // (fresh scratch, no FIB, no SPT repair); the bit-parallel engine
    // run AND the per-flow batched run must both match it bit for bit
    // — f64 demand sums included (the demand grid makes them exact,
    // hence independent of how each dataplane groups additions) — at
    // any thread count.
    let reference = pr_bench::traffic::run_serial(graph, pr, family, flows);
    assert_eq!(reference.len(), family.len());
    for threads in THREAD_COUNTS {
        let rows = pr_bench::traffic::run(graph, pr, family, flows, threads);
        assert_eq!(
            rows,
            reference,
            "bit-parallel rows diverged from serial at {threads} threads ({}, {})",
            family.label(),
            flows.label()
        );
        let batched = pr_bench::traffic::run_batched(graph, pr, family, flows, threads);
        assert_eq!(
            batched,
            reference,
            "batched rows diverged from serial at {threads} threads ({}, {})",
            family.label(),
            flows.label()
        );
        assert_eq!(
            pr_bench::traffic::summarize(&rows),
            pr_bench::traffic::summarize(&reference),
            "summaries diverged at {threads} threads"
        );
    }
}

#[test]
fn abilene_traffic_replay_parallel_equals_serial() {
    let (g, pr) = abilene_net();
    let singles = SingleLinkFailures::new(&g);
    traffic_is_deterministic_on(&g, &pr, &singles, &FlowSet::all_pairs(&GravityTraffic::new(&g)));
    for seed in SEEDS {
        let multi = SampledMultiFailures::new(&g, 3, 6, seed);
        let flows = FlowSet::sampled(&HotspotTraffic::with_defaults(&g, seed), 120, seed);
        traffic_is_deterministic_on(&g, &pr, &multi, &flows);
    }
}

#[test]
fn geant_gravity_traffic_replay_parallel_equals_serial() {
    // The acceptance scenario: `pr traffic geant --model gravity
    // --family single --threads 4` must report weighted coverage, %
    // demand lost and max-link-utilisation bit-identically at 1/2/4
    // threads.
    let g = pr_topologies::load(Isp::Geant, Weighting::Distance);
    let pr = PrNetwork::compile(
        &g,
        planar_embedding(&g, 2010),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::Hops,
    );
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
    traffic_is_deterministic_on(&g, &pr, &SingleLinkFailures::new(&g), &flows);
}

#[test]
fn teleglobe_traffic_replay_parallel_equals_serial() {
    // Identity embedding: positive genus, so some walks end in drops —
    // lost demand must merge identically too.
    let g = pr_topologies::load(Isp::Teleglobe, Weighting::Distance);
    let pr = PrNetwork::compile(
        &g,
        identity_embedding(&g),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::Hops,
    );
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
    traffic_is_deterministic_on(&g, &pr, &SingleLinkFailures::new(&g), &flows);
}

// ---- impaired timelines ------------------------------------------------

use pr_scenarios::{Impaired, ImpairmentProcess};

/// Quick Gilbert–Elliott decoration of the outage sweep.
fn quick_gilbert(graph: &Graph, seed: u64) -> Impaired<'_, OutageSweep<'_>> {
    Impaired::new(
        graph,
        OutageSweep::new(graph, quick_params()),
        ImpairmentProcess::GilbertElliott { fail_rate_per_s: 25.0, mean_down_ns: 8_000_000 },
        seed,
    )
}

fn impair_is_deterministic_on(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn TemporalFamily,
    flows: &FlowSet,
) {
    let reference = pr_bench::impair::run_serial(graph, pr, family, flows);
    assert_eq!(reference.len(), family.len());
    for threads in THREAD_COUNTS {
        let rows = pr_bench::impair::run(graph, pr, family, flows, threads);
        assert_eq!(
            rows,
            reference,
            "impaired timeline rows diverged from serial at {threads} threads ({})",
            family.label()
        );
    }
    // Same family, same seed, fresh run: byte-identical artefact.
    let again = pr_bench::impair::run_serial(graph, pr, family, flows);
    assert_eq!(
        pr_bench::impair::rows_csv(&again),
        pr_bench::impair::rows_csv(&reference),
        "two same-seed runs must render the identical CSV"
    );
}

#[test]
fn abilene_impaired_sweep_parallel_equals_serial() {
    let (g, pr) = abilene_net();
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
    for seed in SEEDS {
        impair_is_deterministic_on(&g, &pr, &quick_gilbert(&g, seed), &flows);
        // Stacked decorators: Impaired<jitter, Impaired<storm, outage>>.
        let stacked = Impaired::new(
            &g,
            Impaired::new(
                &g,
                OutageSweep::new(&g, quick_params()),
                ImpairmentProcess::FlapStorm {
                    storms: 2,
                    radius_km: 800.0,
                    down_for_ns: 10_000_000,
                },
                seed,
            ),
            ImpairmentProcess::DetectionJitter { max_extra_ns: 2_000_000 },
            seed.rotate_left(17),
        );
        impair_is_deterministic_on(&g, &pr, &stacked, &flows);
    }
}

#[test]
fn geant_impaired_sweep_parallel_equals_serial() {
    // The acceptance scenario: `pr impair geant --process gilbert
    // --model gravity --format csv` must be bit-identical at 1/2/4
    // threads and across two same-seed runs.
    let g = pr_topologies::load(Isp::Geant, Weighting::Distance);
    let pr = PrNetwork::compile(
        &g,
        planar_embedding(&g, 2010),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::Hops,
    );
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
    impair_is_deterministic_on(&g, &pr, &quick_gilbert(&g, 2010), &flows);
}

/// The acceptance identity: weighted coverage under the uniform *unit*
/// matrix is **bit-identical** to the unweighted coverage experiment's
/// PR-DD cell, scenario family and conditioning held equal.
#[test]
fn uniform_unit_traffic_matches_unweighted_coverage_bitwise() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let emb = planar_embedding(&g, 2010);
    let pr =
        PrNetwork::compile(&g, emb.clone(), PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    // Coverage row k=1 sweeps exactly the single-link family.
    let coverage = pr_bench::coverage::run(&g, &emb, 1, 0, 7, 2);
    let dd = &coverage[0].pr_dd;

    let flows = FlowSet::all_pairs(&UniformTraffic::new(&g));
    let singles = SingleLinkFailures::new(&g);
    let s = pr_bench::traffic::summarize(&pr_bench::traffic::run(&g, &pr, &singles, &flows, 2));

    assert_eq!(s.tally.evaluated, dd.evaluated as f64, "same conditioning, unit demand");
    assert_eq!(s.tally.evaluated_delivered, dd.delivered as f64);
    assert_eq!(s.weighted_coverage(), dd.ratio(), "bit-identical coverage ratio");
}
