//! The engine's contract: parallel sweeps are **bit-identical** to the
//! serial reference, regardless of thread count.
//!
//! `coverage::run` / `stretch::run` fan (scenario × destination) work
//! units over a racing worker pool, use per-worker FCP route caches,
//! and merge partial results by unit index; `run_serial` is the plain
//! nested loop with the honest recompute-per-decision FCP agent. Any
//! divergence — a reordered sample, a cache changing a decision, a
//! lost unit — fails these tests exactly.

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::Graph;
use pr_topologies::{Isp, Weighting};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SEEDS: [u64; 2] = [7, 2010];

/// A cheap (not necessarily genus-0) embedding: determinism must hold
/// on livelock-prone embeddings too, where walks end in loop drops.
fn identity_embedding(graph: &Graph) -> CellularEmbedding {
    CellularEmbedding::new(graph, RotationSystem::identity(graph)).expect("connected topology")
}

/// A genus-0 embedding like the experiments use (cheap search budget).
fn planar_embedding(graph: &Graph, seed: u64) -> CellularEmbedding {
    let rot = pr_embedding::heuristics::thorough(graph, seed, 4, 10_000);
    CellularEmbedding::new(graph, rot).expect("connected topology")
}

fn coverage_is_deterministic_on(graph: &Graph, embedding: &CellularEmbedding) {
    for seed in SEEDS {
        let reference = pr_bench::coverage::run_serial(graph, embedding, 2, 5, seed);
        for threads in THREAD_COUNTS {
            let rows = pr_bench::coverage::run(graph, embedding, 2, 5, seed, threads);
            assert_eq!(
                rows, reference,
                "coverage rows diverged from serial at seed {seed}, {threads} threads"
            );
        }
    }
}

fn stretch_is_deterministic_on(graph: &Graph, pr: &PrNetwork, scenarios: &[pr_graph::LinkSet]) {
    let reference = pr_bench::stretch::run_serial(graph, pr, scenarios);
    for threads in THREAD_COUNTS {
        let samples = pr_bench::stretch::run(graph, pr, scenarios, threads);
        // Full struct equality: f64 sample vectors compare bit-for-bit
        // (every value is produced by the identical expression on the
        // identical walk, in the identical order).
        assert_eq!(samples, reference, "stretch samples diverged at {threads} threads");
    }
}

#[test]
fn abilene_coverage_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    coverage_is_deterministic_on(&g, &planar_embedding(&g, 2010));
}

#[test]
fn teleglobe_coverage_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Teleglobe, Weighting::Distance);
    // Identity embedding: positive genus, so PR-basic (and possibly
    // PR-DD) livelock on some pairs — drops must merge identically too.
    coverage_is_deterministic_on(&g, &identity_embedding(&g));
}

#[test]
fn abilene_stretch_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let emb = planar_embedding(&g, 2010);
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    // Exhaustive single failures…
    let singles = pr_bench::scenario::all_single_failures(&g);
    stretch_is_deterministic_on(&g, &pr, &singles);
    // …and sampled multi-failures at several seeds.
    for seed in SEEDS {
        let multi = pr_bench::scenario::sampled_multi_failures(&g, 3, 6, seed);
        stretch_is_deterministic_on(&g, &pr, &multi);
    }
}

#[test]
fn teleglobe_stretch_parallel_equals_serial() {
    let g = pr_topologies::load(Isp::Teleglobe, Weighting::Distance);
    let emb = planar_embedding(&g, 2010);
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    for seed in SEEDS {
        let multi = pr_bench::scenario::sampled_multi_failures(&g, 2, 5, seed);
        stretch_is_deterministic_on(&g, &pr, &multi);
    }
}
