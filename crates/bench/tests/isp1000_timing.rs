//! Opt-in acceptance timing for the suffix-memoized walk engine: the
//! seeded 1000-node ISP mesh, exhaustive single-link failures, swept
//! single-threaded both ways (memoized `run_rows` vs unmemoized
//! `run_rows_plain`), with the rows asserted bit-identical. The
//! recorded numbers live in `BENCH_pr8.json`.
//!
//! Ignored by default — this is a ~1-minute run, far too slow for
//! tier-1. Reproduce with:
//!
//! ```text
//! cargo test --release -p pr-bench --test isp1000_timing -- --ignored --nocapture
//! ```

use std::time::Instant;

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::generators::{self, MeshParams};
use pr_scenarios::SingleLinkFailures;

#[test]
#[ignore = "manual acceptance timing (~1 min); run --release --ignored --nocapture"]
fn isp1000_exhaustive_singles_memoized_vs_plain() {
    let g = generators::isp_mesh(&MeshParams::new(1000, 2010));
    let rot = RotationSystem::geometric(&g).expect("mesh has coordinates");
    let emb = CellularEmbedding::new(&g, rot).expect("connected");
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let singles = SingleLinkFailures::new(&g);

    let t = Instant::now();
    let memoized = pr_bench::stretch::run_rows(&g, &pr, &singles, 1, 0);
    let memo_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let plain = pr_bench::stretch::run_rows_plain(&g, &pr, &singles, 1, 0);
    let plain_secs = t.elapsed().as_secs_f64();

    assert_eq!(memoized, plain, "memoized rows must be bit-identical to the plain walker's");
    println!(
        "isp-1000 exhaustive singles, 1 thread: memoized {memo_secs:.1}s, \
         plain {plain_secs:.1}s, speedup {:.2}x ({} scenarios)",
        plain_secs / memo_secs,
        memoized.len(),
    );
    assert!(
        memo_secs <= 30.0,
        "acceptance: memoized sweep must finish in <= 30s, got {memo_secs:.1}s"
    );
}
