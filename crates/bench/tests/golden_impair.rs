//! Golden-file pin of the loss-over-time CSV: the artefact `pr impair`
//! writes is a published interface — plotting scripts key on its
//! header and row shape, and the determinism story promises that a
//! fixed-seed run renders the identical bytes forever. This test pins
//! the header, the first data row of a fixed-seed abilene run, and the
//! shape of every row; a change to any of them is a breaking change to
//! the artefact format and must be made consciously.

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_scenarios::{Impaired, ImpairmentProcess, OutageParams, OutageSweep};
use pr_topologies::{Isp, Weighting};
use pr_traffic::{FlowSet, GravityTraffic};

const HEADER: &str = "scenario,label,from_ms,to_ms,links_down,offered,pr_lost,igp_lost,\
                      pr_loss_fraction,igp_loss_fraction,weighted_coverage,mean_stretch";

fn fixed_seed_rows() -> Vec<pr_bench::impair::ImpairRow> {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let rot = pr_embedding::heuristics::thorough(&g, 2010, 4, 10_000);
    let emb = CellularEmbedding::new(&g, rot).expect("abilene is connected");
    let pr = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let family = Impaired::new(
        &g,
        OutageSweep::new(
            &g,
            OutageParams {
                interval_ns: 500_000,
                fail_at_ns: 10_000_000,
                down_for_ns: 40_000_000,
                igp_convergence_ns: 40_000_000,
                duration_ns: 80_000_000,
                ..OutageParams::default()
            },
        ),
        ImpairmentProcess::GilbertElliott { fail_rate_per_s: 25.0, mean_down_ns: 8_000_000 },
        2010,
    );
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
    pr_bench::impair::run(&g, &pr, &family, &flows, 2)
}

#[test]
fn loss_over_time_csv_header_and_shape_are_pinned() {
    let csv = pr_bench::impair::rows_csv(&fixed_seed_rows());
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(HEADER), "the CSV header is a published interface");

    let first = lines.next().expect("a fixed-seed abilene run has sampled intervals");
    assert_eq!(
        first, "0,outage:Seattle-Sunnyvale+gilbert,0.000,0.825,0,110.000000,0.000000,0.000000,0.000000,0.000000,1.000000,1.000000",
        "first data row of the fixed-seed run is pinned byte for byte"
    );

    let mut rows = 1usize;
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 12, "12 fields per row: {line}");
        fields[0].parse::<usize>().expect("scenario index");
        assert!(fields[1].contains("+gilbert"), "decorated label: {line}");
        let from: f64 = fields[2].parse().expect("from_ms");
        let to: f64 = fields[3].parse().expect("to_ms");
        // Intervals are strictly positive in ns but can collapse to
        // the same 3-decimal ms rendering.
        assert!(to >= from, "ordered interval: {line}");
        fields[4].parse::<u32>().expect("links_down");
        for f in &fields[5..] {
            let v: f64 = f.parse().expect("numeric metric");
            assert!(v.is_finite() && v >= 0.0, "finite non-negative metric: {line}");
        }
        rows += 1;
    }
    assert!(rows > 14, "more than one interval per scenario: {rows}");
}
