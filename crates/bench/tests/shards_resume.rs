//! The sharding contract: a sweep killed after k shards and resumed
//! from its checkpoint merges to output **byte-identical** to a clean,
//! uninterrupted run — at any shard count — on a shipped topology and
//! on a synthetic ISP mesh.

use std::path::PathBuf;

use pr_bench::shards::{run_shards, shard_file, ShardKey, ShardOutcome};
use pr_bench::stretch::{self, ScenarioRow};
use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_graph::{generators, Graph};
use pr_scenarios::{ScenarioFamily, ScenarioSlice, SingleLinkFailures};
use pr_topologies::{Isp, Weighting};

fn compile_pr(graph: &Graph) -> PrNetwork {
    let rot = pr_embedding::heuristics::thorough(graph, 2010, 4, 10_000);
    let emb = CellularEmbedding::new(graph, rot).unwrap();
    PrNetwork::compile(graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops)
}

/// A scratch checkpoint directory under the test-private tmp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("shards").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key_for(graph: &Graph, family: &dyn ScenarioFamily, shards: u64) -> ShardKey {
    ShardKey {
        topology: graph.fingerprint(),
        nodes: graph.node_count() as u64,
        links: graph.link_count() as u64,
        family: family.label(),
        seed: 2010,
        scenarios: family.len() as u64,
        shards,
    }
}

/// Kill-after-k-shards on one topology: every merged output (rows, CSV
/// artefact, JSON report) must be byte-identical to the clean run's.
fn kill_and_resume_is_byte_identical(graph: &Graph, name: &str) {
    let pr = compile_pr(graph);
    let family = SingleLinkFailures::new(graph);
    let xs = stretch::figure2_xs();
    let run_slice = |_shard: usize, start: usize, len: usize| {
        let slice = ScenarioSlice::new(&family, start, len);
        stretch::run_rows(graph, &pr, &slice, 2, start)
    };

    // The reference: a plain, unsharded sweep over raw samples.
    let plain_csv = stretch::panel_csv(&stretch::run(graph, &pr, &family, 2), &xs);

    // Clean sharded run.
    let clean_dir = scratch_dir(&format!("{name}-clean"));
    let key = key_for(graph, &family, 3);
    let clean = match run_shards(&clean_dir, &key, false, None, run_slice).unwrap() {
        ShardOutcome::Complete(rows) => rows,
        partial => panic!("clean run stopped early: {partial:?}"),
    };
    assert_eq!(
        stretch::panel_csv_from_rows(&clean, &xs),
        plain_csv,
        "sharded CSV must equal the plain unsharded artefact byte for byte"
    );

    // Killed after 1 of 3 shards, then resumed.
    let dir = scratch_dir(&format!("{name}-killed"));
    match run_shards(&dir, &key, false, Some(1), run_slice).unwrap() {
        ShardOutcome::Partial { completed, total } => {
            assert_eq!((completed, total), (1, 3));
        }
        done => panic!("expected a partial checkpoint, got {done:?}"),
    }
    assert!(shard_file(&dir, 0).is_file(), "the finished shard must be checkpointed");
    assert!(!shard_file(&dir, 2).is_file(), "unreached shards must not exist");
    let resumed = match run_shards(&dir, &key, true, None, run_slice).unwrap() {
        ShardOutcome::Complete(rows) => rows,
        partial => panic!("resume did not complete: {partial:?}"),
    };
    assert_eq!(resumed, clean, "resumed rows must equal the clean run's");
    let report = |rows: &[ScenarioRow]| {
        serde_json::to_string_pretty(&stretch::report_from_rows(rows, &xs)).unwrap()
    };
    assert_eq!(report(&resumed), report(&clean), "JSON report byte-identical");
    assert_eq!(stretch::panel_csv_from_rows(&resumed, &xs), plain_csv);

    // Resuming an already-complete checkpoint recomputes nothing and
    // merges identically.
    let again = match run_shards(&dir, &key, true, Some(0), run_slice).unwrap() {
        ShardOutcome::Complete(rows) => rows,
        partial => panic!("complete checkpoint reported {partial:?}"),
    };
    assert_eq!(again, clean);
}

#[test]
fn abilene_kill_and_resume_is_byte_identical() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    kill_and_resume_is_byte_identical(&g, "abilene");
}

#[test]
fn synthetic_mesh_kill_and_resume_is_byte_identical() {
    let g = generators::isp_mesh(&generators::MeshParams::new(24, 2010));
    kill_and_resume_is_byte_identical(&g, "mesh24");
}

#[test]
fn merged_rows_are_shard_count_invariant() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let pr = compile_pr(&g);
    let family = SingleLinkFailures::new(&g);
    let run_slice = |_shard: usize, start: usize, len: usize| {
        let slice = ScenarioSlice::new(&family, start, len);
        stretch::run_rows(&g, &pr, &slice, 2, start)
    };
    let mut merged: Vec<Vec<ScenarioRow>> = Vec::new();
    for shards in [1u64, 4, 7] {
        let dir = scratch_dir(&format!("abilene-{shards}shards"));
        let key = key_for(&g, &family, shards);
        match run_shards(&dir, &key, false, None, run_slice).unwrap() {
            ShardOutcome::Complete(rows) => merged.push(rows),
            partial => panic!("{partial:?}"),
        }
    }
    assert_eq!(merged[0], merged[1], "1 vs 4 shards");
    assert_eq!(merged[0], merged[2], "1 vs 7 shards");
}

#[test]
fn resume_rejects_a_mismatched_checkpoint() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let pr = compile_pr(&g);
    let family = SingleLinkFailures::new(&g);
    let run_slice = |_shard: usize, start: usize, len: usize| {
        let slice = ScenarioSlice::new(&family, start, len);
        stretch::run_rows(&g, &pr, &slice, 1, start)
    };
    let dir = scratch_dir("abilene-mismatch");
    let key = key_for(&g, &family, 3);
    match run_shards(&dir, &key, false, Some(1), run_slice).unwrap() {
        ShardOutcome::Partial { .. } => {}
        done => panic!("{done:?}"),
    }
    // Same directory, different shard plan: refuse to mix.
    let other = ShardKey { shards: 5, ..key.clone() };
    let err = run_shards(&dir, &other, true, None, run_slice).unwrap_err();
    assert!(err.contains("different sweep"), "{err}");
    // …different topology: refuse too.
    let other = ShardKey { topology: key.topology ^ 1, ..key.clone() };
    let err = run_shards(&dir, &other, true, None, run_slice).unwrap_err();
    assert!(err.contains("different sweep"), "{err}");
    // Without resume the stale checkpoint is cleared, not mixed in.
    let other = ShardKey { shards: 5, ..key };
    match run_shards(&dir, &other, false, None, run_slice).unwrap() {
        ShardOutcome::Complete(rows) => assert_eq!(rows.len(), family.len()),
        partial => panic!("{partial:?}"),
    }
}

#[test]
fn resume_recovers_from_a_lost_shard_file() {
    let g = pr_topologies::load(Isp::Abilene, Weighting::Distance);
    let pr = compile_pr(&g);
    let family = SingleLinkFailures::new(&g);
    let run_slice = |_shard: usize, start: usize, len: usize| {
        let slice = ScenarioSlice::new(&family, start, len);
        stretch::run_rows(&g, &pr, &slice, 1, start)
    };
    let dir = scratch_dir("abilene-lostfile");
    let key = key_for(&g, &family, 3);
    let clean = match run_shards(&dir, &key, false, None, run_slice).unwrap() {
        ShardOutcome::Complete(rows) => rows,
        partial => panic!("{partial:?}"),
    };
    // A shard file vanishes (manifest still lists it): resume must
    // recompute that shard, not fail or skip it.
    std::fs::remove_file(shard_file(&dir, 1)).unwrap();
    let recovered = match run_shards(&dir, &key, true, None, run_slice).unwrap() {
        ShardOutcome::Complete(rows) => rows,
        partial => panic!("{partial:?}"),
    };
    assert_eq!(recovered, clean);
}
