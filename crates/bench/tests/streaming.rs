//! The streaming contract of the scenario subsystem, exercised at a
//! scale a materialised `Vec<LinkSet>` is not welcome at: the
//! exhaustive k=3 space of GÉANT is C(52, 3) = 22 100 scenarios, and
//! the sweep below holds **one** `LinkSet` per worker at any instant —
//! the family is a few words, scenarios are unranked on demand inside
//! the engine's work units.

use pr_bench::engine;
use pr_graph::{algo, LinkSet};
use pr_scenarios::{ExhaustiveKFailures, ScenarioFamily, SingleLinkFailures};
use pr_topologies::{Isp, Weighting};

#[test]
fn exhaustive_k3_geant_sweeps_through_the_engine_without_materializing() {
    let g = pr_topologies::load(Isp::Geant, Weighting::Distance);
    let family = ExhaustiveKFailures::new(&g, 3);
    assert_eq!(family.len(), 22_100, "C(52, 3)");

    // One engine work unit per scenario; each unit unranks its own
    // failure set into a reusable per-worker buffer and classifies
    // connectivity. Memory: O(workers) LinkSets, never O(len).
    let count = |threads: usize| {
        let parts = engine::run_units(
            family.len(),
            threads,
            || LinkSet::empty(g.link_count()),
            |set, i| {
                *set = family.scenario(i);
                assert_eq!(set.len(), 3, "scenario {i}");
                u64::from(algo::is_connected(&g, set))
            },
        );
        parts.iter().sum::<u64>()
    };

    let serial = count(1);
    // GÉANT's cycle space has dimension 52 - 33 = 19 ≥ 3, so *some*
    // 3-subsets keep it connected; bridges-by-removal mean not all do.
    assert!(serial > 0 && serial < 22_100, "connected 3-subsets: {serial}");
    // Thread counts agree (the sum is order-invariant, but the engine
    // also merges per-unit results in index order).
    for threads in [2, 4] {
        assert_eq!(count(threads), serial, "{threads} threads");
    }

    // The connectivity-prefiltered subfamily stores ranks only (8
    // bytes each) and must agree with the sweep's census.
    let connected = ExhaustiveKFailures::connected_only(&g, 3);
    assert_eq!(connected.len() as u64, serial);
    for i in [0, connected.len() / 2, connected.len() - 1] {
        assert!(algo::is_connected(&g, &connected.scenario(i)));
    }
}

#[test]
fn streaming_single_family_matches_the_historical_list() {
    let g = pr_topologies::load(Isp::Geant, Weighting::Distance);
    let fam = SingleLinkFailures::new(&g);
    let list = pr_bench::scenario::all_single_failures(&g);
    assert_eq!(fam.len(), list.len());
    for (i, expected) in list.into_iter().enumerate() {
        assert_eq!(fam.scenario(i), expected);
    }
}
