//! The impairment experiment: demand-weighted loss-over-time under a
//! stochastic fault process.
//!
//! A temporal sweep ([`crate::temporal`]) prices each scenario with
//! the packet simulator; this experiment prices each scenario's whole
//! **timeline** with the traffic dataplane instead: one work unit per
//! scenario of a (typically [`Impaired`](pr_scenarios::Impaired))
//! [`TemporalFamily`], each unit replaying the [`FlowSet`] through
//! `pr_traffic::replay_timeline` to get a [`TallySeries`] — the
//! demand-weighted loss-over-time and stretch-over-time curves the
//! `pr impair` subcommand emits.
//!
//! **Determinism.** An impaired family's timeline is pure in
//! `(scenario index, seed)`; the timeline replay is exact on the
//! demand grid; units merge in scenario order through
//! [`engine::run_units`]. [`run`] is therefore bit-identical to
//! [`run_serial`] at any thread count and across runs
//! (`tests/determinism.rs`).

use serde::Serialize;

use pr_core::{generous_ttl, DenseFib, PrNetwork};
use pr_graph::{AllPairs, Graph};
use pr_scenarios::TemporalFamily;
use pr_traffic::{replay_timeline, FlowSet, ReplayScratch, TimelineTraffic};

use crate::engine;

/// One scenario timeline's demand-weighted outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ImpairRow {
    /// Scenario index within its family.
    pub scenario: usize,
    /// Scenario label (e.g. `"outage:LON-PAR+gilbert"`).
    pub label: String,
    /// Link events in the (impaired) timeline.
    pub events: usize,
    /// The loss-over-time curve plus the window's peak link load.
    pub traffic: TimelineTraffic,
}

/// Replays `flows` through every scenario timeline of `family` on
/// `threads` workers. Failure-invariant state — base trees, staged
/// dense FIB, compiled agent, TTL — is hoisted once; each worker owns
/// a private [`ReplayScratch`] reused across its scenarios.
pub fn run(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn TemporalFamily,
    flows: &FlowSet,
    threads: usize,
) -> Vec<ImpairRow> {
    let base = AllPairs::compute_all_live(graph);
    let dense = DenseFib::from_base(graph, &base);
    let agent = pr.agent(graph);
    let ttl = generous_ttl(graph);

    engine::run_units(
        family.len(),
        threads.max(1),
        ReplayScratch::new,
        |scratch: &mut ReplayScratch<pr_core::PrHeader>, i| {
            let scenario = family.scenario(i);
            let traffic =
                replay_timeline(graph, &agent, &dense, &base, flows, &scenario, ttl, scratch);
            ImpairRow { scenario: i, label: scenario.label, events: scenario.events.len(), traffic }
        },
    )
}

/// The serial reference: the plain scenario loop. [`run`] must be
/// bit-identical to this at every thread count.
pub fn run_serial(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn TemporalFamily,
    flows: &FlowSet,
) -> Vec<ImpairRow> {
    let base = AllPairs::compute_all_live(graph);
    let dense = DenseFib::from_base(graph, &base);
    let agent = pr.agent(graph);
    let ttl = generous_ttl(graph);
    let mut scratch = ReplayScratch::new();
    (0..family.len())
        .map(|i| {
            let scenario = family.scenario(i);
            let traffic =
                replay_timeline(graph, &agent, &dense, &base, flows, &scenario, ttl, &mut scratch);
            ImpairRow { scenario: i, label: scenario.label, events: scenario.events.len(), traffic }
        })
        .collect()
}

/// Aggregate of an impairment sweep: time integrals folded over every
/// scenario in order (thread-count invariant).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ImpairSummary {
    /// Scenario timelines replayed.
    pub scenarios: usize,
    /// Link events across all timelines.
    pub events: usize,
    /// `∫ offered dt` summed over scenarios (demand-seconds).
    pub offered_demand_seconds: f64,
    /// `∫ lost_PR dt` summed over scenarios.
    pub pr_demand_seconds_lost: f64,
    /// `∫ lost_IGP dt` summed over scenarios.
    pub igp_demand_seconds_lost: f64,
    /// Worst instantaneous PR loss fraction anywhere in the sweep.
    pub peak_pr_loss_fraction: f64,
    /// Scenario index of that peak (`None` for an empty sweep).
    pub peak_scenario: Option<usize>,
    /// Worst per-interval peak link load anywhere in the sweep.
    pub max_link_load: f64,
}

impl ImpairSummary {
    /// Sweep-wide time-weighted PR loss fraction.
    pub fn pr_loss_over_time(&self) -> f64 {
        if self.offered_demand_seconds == 0.0 {
            0.0
        } else {
            self.pr_demand_seconds_lost / self.offered_demand_seconds
        }
    }

    /// Sweep-wide time-weighted loss fraction of the reconverging IGP.
    pub fn igp_loss_over_time(&self) -> f64 {
        if self.offered_demand_seconds == 0.0 {
            0.0
        } else {
            self.igp_demand_seconds_lost / self.offered_demand_seconds
        }
    }
}

/// Folds a sweep's rows in scenario order.
pub fn summarize(rows: &[ImpairRow]) -> ImpairSummary {
    let mut s = ImpairSummary { scenarios: rows.len(), ..Default::default() };
    for r in rows {
        s.events += r.events;
        s.offered_demand_seconds += r.traffic.series.offered_demand_seconds();
        s.pr_demand_seconds_lost += r.traffic.series.pr_demand_seconds_lost();
        s.igp_demand_seconds_lost += r.traffic.series.igp_demand_seconds_lost();
        let peak = r.traffic.series.peak_pr_loss_fraction();
        if peak > s.peak_pr_loss_fraction {
            s.peak_pr_loss_fraction = peak;
            s.peak_scenario = Some(r.scenario);
        }
        s.max_link_load = s.max_link_load.max(r.traffic.max_link_load);
    }
    s
}

/// Renders a sweep as CSV: one row per **sampled interval**, so the
/// artefact is the loss-over-time curve itself, not just its integral.
pub fn rows_csv(rows: &[ImpairRow]) -> String {
    let mut out = String::from(
        "scenario,label,from_ms,to_ms,links_down,offered,pr_lost,igp_lost,\
         pr_loss_fraction,igp_loss_fraction,weighted_coverage,mean_stretch\n",
    );
    for r in rows {
        for s in &r.traffic.series.samples {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                r.scenario,
                r.label,
                s.from_ns as f64 * 1e-6,
                s.to_ns as f64 * 1e-6,
                s.links_down,
                s.tally.offered,
                s.pr_lost(),
                s.igp_lost(),
                s.pr_lost_fraction(),
                s.igp_lost_fraction(),
                s.tally.weighted_coverage(),
                s.tally.mean_weighted_stretch().unwrap_or(1.0),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_core::{DiscriminatorKind, PrMode};
    use pr_scenarios::{Impaired, ImpairmentProcess, OutageParams, OutageSweep};
    use pr_topologies::Isp;
    use pr_traffic::GravityTraffic;

    fn abilene() -> (Graph, PrNetwork) {
        let (g, emb) = crate::paper_topology(Isp::Abilene);
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        (g, net)
    }

    #[test]
    fn gilbert_impaired_sweep_prices_pr_ahead_of_the_igp() {
        let (g, net) = abilene();
        let fam = Impaired::new(
            &g,
            OutageSweep::new(&g, OutageParams::default()),
            ImpairmentProcess::GilbertElliott { fail_rate_per_s: 5.0, mean_down_ns: 30_000_000 },
            crate::EXPERIMENT_SEED,
        );
        let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
        let rows = run(&g, &net, &fam, &flows, 2);
        assert_eq!(rows.len(), g.link_count());
        let s = summarize(&rows);
        assert!(s.events > 2 * s.scenarios, "gilbert must inject beyond the base outages");
        assert!(s.offered_demand_seconds > 0.0);
        assert!(
            s.pr_demand_seconds_lost < s.igp_demand_seconds_lost,
            "pr={} igp={}",
            s.pr_demand_seconds_lost,
            s.igp_demand_seconds_lost
        );
        assert!(s.pr_loss_over_time() < s.igp_loss_over_time());
        assert!(s.peak_scenario.is_some());
        let csv = rows_csv(&rows);
        assert!(csv.starts_with("scenario,label,from_ms,"));
        assert!(csv.lines().count() > rows.len(), "one line per sampled interval");
    }

    #[test]
    fn identity_impairment_matches_the_undecorated_family() {
        let (g, net) = abilene();
        let inner = OutageSweep::new(&g, OutageParams::default());
        let wrapped = Impaired::new(
            &g,
            OutageSweep::new(&g, OutageParams::default()),
            ImpairmentProcess::GilbertElliott { fail_rate_per_s: 0.0, mean_down_ns: 1 },
            crate::EXPERIMENT_SEED,
        );
        let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
        assert_eq!(run(&g, &net, &inner, &flows, 2), run(&g, &net, &wrapped, &flows, 2));
    }
}
