//! Ablations: the design choices DESIGN.md calls out.
//!
//! * **E6** — embedding heuristic vs genus/faces and stretch;
//! * **E7** — hop-count vs weighted-cost distance discriminator;
//! * **E11** — delivery rate as a function of embedding genus (the
//!   reproduction finding: §5's guarantee is a genus-0 statement).
//!
//! All three sweeps route through [`crate::engine`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use pr_core::{
    generous_ttl, walk_packet_spliced, DiscriminatorKind, PrHeader, PrMode, PrNetwork, SuffixMemo,
    WalkResult, WalkScratch,
};
use pr_embedding::{genus, CellularEmbedding, FaceStructure, RotationSystem};
use pr_graph::{AllPairs, Graph, LinkSet, SpScratch, SpTree};
use pr_scenarios::{SampledMultiFailures, ScenarioFamily, SingleLinkFailures};

use crate::engine::ScenarioSweep;

/// E6: one embedding heuristic's quality and its stretch consequences.
#[derive(Debug, Clone, Serialize)]
pub struct EmbeddingAblationRow {
    /// Heuristic label.
    pub heuristic: String,
    /// Genus achieved.
    pub genus: u32,
    /// Number of faces.
    pub faces: usize,
    /// Largest face size (worst-case single-episode detour bound).
    pub max_face: usize,
    /// Mean PR stretch over all single-failure affected pairs.
    pub mean_stretch: f64,
    /// Max PR stretch over the same set.
    pub max_stretch: f64,
    /// Delivered fraction (can dip below 1 at genus > 0).
    pub delivery: f64,
}

/// Runs E6 on one topology: identity vs geometric vs hill-climb vs
/// thorough.
pub fn embedding_ablation(graph: &Graph, seed: u64, threads: usize) -> Vec<EmbeddingAblationRow> {
    let geometric = RotationSystem::geometric(graph).ok();
    let mut candidates: Vec<(String, RotationSystem)> =
        vec![("identity".into(), RotationSystem::identity(graph))];
    if let Some(geo) = geometric {
        candidates.push(("geometric".into(), geo.clone()));
        candidates
            .push(("geometric+hillclimb".into(), pr_embedding::heuristics::hill_climb(graph, geo)));
    }
    candidates
        .push(("thorough".into(), pr_embedding::heuristics::thorough(graph, seed, 6, 40_000)));

    // Candidate-invariant state, hoisted out of the per-heuristic loop
    // (the single-link family streams — nothing to materialise).
    let scenarios = SingleLinkFailures::new(graph);
    let base = AllPairs::compute_all_live(graph);

    candidates
        .into_iter()
        .map(|(name, rot)| {
            let faces = FaceStructure::trace(graph, &rot);
            let g = genus(graph, &faces).expect("connected topology");
            let emb = CellularEmbedding::new(graph, rot).expect("validated rotation");
            let (mean, max, delivery) =
                single_failure_stretch(graph, &emb, &scenarios, &base, threads);
            EmbeddingAblationRow {
                heuristic: name,
                genus: g,
                faces: faces.face_count(),
                max_face: faces.max_face_size(),
                mean_stretch: mean,
                max_stretch: max,
                delivery,
            }
        })
        .collect()
}

/// Per-unit partial for the PR-DD-only sweeps: stretch samples in
/// source order plus (evaluated, delivered) counts.
#[derive(Debug, Default)]
struct PrDdPartial {
    stretches: Vec<f64>,
    evaluated: u64,
    delivered: u64,
}

/// Sweeps one compiled PR-DD network over `scenarios`, collecting
/// stretch samples and delivery counts (the shared core of E6/E7).
/// `base` is caller-hoisted: E6/E7 sweep the same graph once per
/// candidate network, so the failure-free trees are shared across
/// calls.
fn pr_dd_sweep(
    graph: &Graph,
    net: &PrNetwork,
    scenarios: &dyn ScenarioFamily,
    base: &AllPairs,
    threads: usize,
) -> PrDdPartial {
    let agent = net.agent(graph);
    let ttl = generous_ttl(graph);
    let sweep = ScenarioSweep::new(graph, scenarios, base, threads);
    let worker = || {
        (
            WalkScratch::<PrHeader>::new(),
            SuffixMemo::<PrHeader>::new(),
            SpScratch::new(),
            SpTree::placeholder(),
        )
    };
    let parts: Vec<PrDdPartial> = sweep.run(worker, |(scratch, memo, sp_scratch, live), unit| {
        live.repair_refresh(unit.base_tree, graph, unit.failed, sp_scratch);
        let live_tree = &*live;
        memo.begin_unit();
        let mut out = PrDdPartial::default();
        for src in graph.nodes() {
            if src == unit.dst {
                continue;
            }
            if !unit.base_tree.path_crosses(graph, src, unit.failed) {
                continue;
            }
            if !live_tree.reaches(src) {
                continue;
            }
            out.evaluated += 1;
            let w =
                walk_packet_spliced(graph, &agent, src, unit.dst, unit.failed, ttl, scratch, memo);
            if let WalkResult::Delivered = w.result {
                out.delivered += 1;
                out.stretches.push(w.cost as f64 / unit.base_tree.cost(src).unwrap() as f64);
            }
        }
        out
    });
    let mut merged = PrDdPartial::default();
    for part in parts {
        merged.stretches.extend(part.stretches);
        merged.evaluated += part.evaluated;
        merged.delivered += part.delivered;
    }
    merged
}

/// Mean/max PR-DD stretch and delivery ratio over all single-failure
/// affected pairs. `scenarios`/`base` are hoisted by the caller
/// (identical for every heuristic candidate on one graph).
fn single_failure_stretch(
    graph: &Graph,
    embedding: &CellularEmbedding,
    scenarios: &dyn ScenarioFamily,
    base: &AllPairs,
    threads: usize,
) -> (f64, f64, f64) {
    let net = PrNetwork::compile(
        graph,
        embedding.clone(),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::Hops,
    );
    let r = pr_dd_sweep(graph, &net, scenarios, base, threads);
    let mean = if r.stretches.is_empty() {
        f64::NAN
    } else {
        r.stretches.iter().sum::<f64>() / r.stretches.len() as f64
    };
    let max = r.stretches.iter().copied().fold(f64::NAN, f64::max);
    let delivery = if r.evaluated == 0 { 1.0 } else { r.delivered as f64 / r.evaluated as f64 };
    (mean, max, delivery)
}

/// E7: discriminator function comparison on one topology.
#[derive(Debug, Clone, Serialize)]
pub struct DiscriminatorAblationRow {
    /// Discriminator label.
    pub discriminator: String,
    /// Header bits required.
    pub header_bits: u8,
    /// Delivery ratio over sampled multi-failure scenarios.
    pub delivery: f64,
    /// Mean stretch over delivered affected pairs.
    pub mean_stretch: f64,
}

/// Runs E7: both discriminator kinds over sampled multi-failure
/// scenarios.
pub fn discriminator_ablation(
    graph: &Graph,
    embedding: &CellularEmbedding,
    failures: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Vec<DiscriminatorAblationRow> {
    let scenarios = SampledMultiFailures::new(graph, failures, samples, seed);
    let base = AllPairs::compute_all_live(graph);
    [DiscriminatorKind::Hops, DiscriminatorKind::WeightedCost]
        .into_iter()
        .map(|kind| {
            let net =
                PrNetwork::compile(graph, embedding.clone(), PrMode::DistanceDiscriminator, kind);
            let r = pr_dd_sweep(graph, &net, &scenarios, &base, threads);
            DiscriminatorAblationRow {
                discriminator: kind.to_string(),
                header_bits: net.codec().total_bits(),
                delivery: if r.evaluated == 0 {
                    1.0
                } else {
                    r.delivered as f64 / r.evaluated as f64
                },
                mean_stretch: if r.stretches.is_empty() {
                    f64::NAN
                } else {
                    r.stretches.iter().sum::<f64>() / r.stretches.len() as f64
                },
            }
        })
        .collect()
}

/// E11: delivery rate binned by embedding genus.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GenusDeliveryRow {
    /// Embedding genus of this bin.
    pub genus: u32,
    /// Rotation systems sampled in this bin.
    pub embeddings: u64,
    /// (scenario, pair) combinations evaluated.
    pub evaluated: u64,
    /// Delivered count.
    pub delivered: u64,
}

/// Runs E11 on one graph: samples random rotation systems, bins by
/// genus, and measures PR-DD delivery over sampled non-disconnecting
/// failure sets.
pub fn genus_delivery(
    graph: &Graph,
    rotations: usize,
    failures: usize,
    scenarios_per_rotation: usize,
    seed: u64,
    threads: usize,
) -> Vec<GenusDeliveryRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bins: std::collections::BTreeMap<u32, GenusDeliveryRow> = Default::default();
    let ttl = generous_ttl(graph);
    let base = AllPairs::compute_all_live(graph);
    for i in 0..rotations {
        let rot = RotationSystem::random(graph, &mut rng);
        let emb = CellularEmbedding::new(graph, rot).expect("connected topology");
        let g = emb.genus();
        let net =
            PrNetwork::compile(graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(graph);
        let row =
            bins.entry(g).or_insert_with(|| GenusDeliveryRow { genus: g, ..Default::default() });
        row.embeddings += 1;
        let scenarios: Vec<LinkSet> = (0..scenarios_per_rotation)
            .map(|s| {
                let draw = crate::scenario::random_connected_failures(
                    graph,
                    failures,
                    seed ^ (i as u64) << 20 ^ s as u64,
                );
                // A shortfall here means the caller asked for more
                // concurrent failures than the graph's cycle space
                // admits — the per-genus bins would silently mix
                // failure counts.
                assert!(
                    draw.is_complete(),
                    "graph cannot lose {failures} links (drew {} — lower the failure count)",
                    draw.links.len()
                );
                draw.links
            })
            .collect();
        let sweep = ScenarioSweep::new(graph, &scenarios, &base, threads);
        let worker = || {
            (
                WalkScratch::<PrHeader>::new(),
                SuffixMemo::<PrHeader>::new(),
                SpScratch::new(),
                SpTree::placeholder(),
            )
        };
        let parts: Vec<(u64, u64)> =
            sweep.run(worker, |(scratch, memo, sp_scratch, live), unit| {
                live.repair_refresh(unit.base_tree, graph, unit.failed, sp_scratch);
                let live_tree = &*live;
                memo.begin_unit();
                let (mut evaluated, mut delivered) = (0u64, 0u64);
                for src in graph.nodes() {
                    if src == unit.dst || !live_tree.reaches(src) {
                        continue;
                    }
                    evaluated += 1;
                    let walk = walk_packet_spliced(
                        graph,
                        &agent,
                        src,
                        unit.dst,
                        unit.failed,
                        ttl,
                        scratch,
                        memo,
                    );
                    if walk.result.is_delivered() {
                        delivered += 1;
                    }
                }
                (evaluated, delivered)
            });
        for (evaluated, delivered) in parts {
            row.evaluated += evaluated;
            row.delivered += delivered;
        }
    }
    bins.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_graph::generators;

    #[test]
    fn embedding_ablation_orders_heuristics() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let rows = embedding_ablation(&g, 7, 2);
        assert!(rows.len() >= 3);
        let thorough = rows.iter().find(|r| r.heuristic == "thorough").unwrap();
        assert_eq!(thorough.genus, 0, "thorough must find Abilene's planar embedding");
        assert_eq!(thorough.delivery, 1.0);
        // More faces never hurt mean stretch ordering *on average*; at
        // minimum the thorough embedding is no worse than identity.
        let identity = rows.iter().find(|r| r.heuristic == "identity").unwrap();
        assert!(thorough.faces >= identity.faces);
    }

    #[test]
    fn discriminator_ablation_shows_bit_cost_difference() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let rot = pr_embedding::heuristics::thorough(&g, 1, 4, 10_000);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let rows = discriminator_ablation(&g, &emb, 2, 5, 11, 2);
        assert_eq!(rows.len(), 2);
        let hops = &rows[0];
        let cost = &rows[1];
        assert!(hops.header_bits < cost.header_bits, "hops DD needs fewer bits");
        assert_eq!(hops.delivery, 1.0);
        assert_eq!(cost.delivery, 1.0);
    }

    #[test]
    fn genus_delivery_shows_the_finding_on_k5() {
        let g = generators::complete(5, 1);
        let rows = genus_delivery(&g, 30, 3, 3, 99, 2);
        assert!(!rows.is_empty());
        // K5 has no genus-0 rotation system.
        assert!(rows.iter().all(|r| r.genus >= 1));
        // And some bin shows imperfect delivery (the finding).
        let any_loss = rows.iter().any(|r| r.delivered < r.evaluated);
        assert!(any_loss, "expected some livelock at positive genus: {rows:?}");
    }
}
