//! The traffic-replay experiment: demand-weighted resilience over a
//! scenario family.
//!
//! Where coverage (E5) asks *"what fraction of affected pairs still
//! deliver"*, this experiment asks the operator's question: *"what
//! fraction of the **traffic** still delivers, and how hot does the
//! hottest link run while it detours"*. One work unit per scenario,
//! fanned over [`crate::engine::run_units`]: each unit replays the
//! whole [`FlowSet`] through `pr-traffic`'s bit-parallel dataplane
//! (u64 affected-set classification over the staged dense FIB,
//! bottom-up subtree demand aggregation, per-flow fallback only for
//! affected-but-connected sources) and reports a demand-weighted
//! [`ScenarioTraffic`]. Units merge in scenario order, so [`run`] is
//! bit-identical to [`run_batched`] and [`run_serial`] at any thread
//! count (enforced by `tests/determinism.rs` — the demand grid makes
//! every replay sum exact, hence association-free).

use serde::Serialize;

use pr_core::{generous_ttl, DenseFib, Fib, PrNetwork};
use pr_graph::{AllPairs, Graph};
use pr_scenarios::{ScenarioFamily, ScenarioIter};
use pr_sim::DemandTally;
use pr_traffic::{
    replay_scenario, replay_scenario_bitparallel, replay_scenario_naive, FlowSet, ReplayScratch,
};

use crate::engine::run_units;

/// One scenario's demand-weighted outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficRow {
    /// Index of the scenario in the family.
    pub scenario: usize,
    /// Number of links failed in the scenario.
    pub failures: usize,
    /// The replay outcome: tally + peak link load.
    pub traffic: pr_traffic::ScenarioTraffic,
}

/// Aggregate over a sweep's rows (folded in scenario order — the
/// totals are thread-count invariant).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TrafficSummary {
    /// Scenarios replayed.
    pub scenarios: usize,
    /// Demand-weighted tally summed over all scenarios.
    pub tally: DemandTally,
    /// Worst per-scenario max-link-utilisation (peak link load as a
    /// fraction of offered demand), and the scenario it occurred in.
    pub max_link_utilisation: f64,
    /// Scenario index of the utilisation peak (`None` for an empty
    /// sweep or when nothing was delivered anywhere).
    pub peak_scenario: Option<usize>,
}

impl TrafficSummary {
    /// Traffic-weighted coverage over the whole sweep.
    pub fn weighted_coverage(&self) -> f64 {
        self.tally.weighted_coverage()
    }

    /// Fraction of the offered demand lost over the whole sweep.
    pub fn demand_lost_fraction(&self) -> f64 {
        self.tally.demand_lost_fraction()
    }
}

/// Sums a sweep's rows in scenario order.
pub fn summarize(rows: &[TrafficRow]) -> TrafficSummary {
    let mut s = TrafficSummary { scenarios: rows.len(), ..Default::default() };
    for r in rows {
        s.tally.absorb(&r.traffic.tally);
        let util = r.traffic.max_link_utilisation();
        if util > s.max_link_utilisation {
            s.max_link_utilisation = util;
            s.peak_scenario = Some(r.scenario);
        }
    }
    s
}

/// Replays `flows` through every scenario of `family` on `threads`
/// workers using the bit-parallel dataplane. Failure-invariant state
/// — the base trees, the flat FIB, the staged dense FIB, the compiled
/// PR agent, the TTL — is hoisted once; each worker owns a private
/// [`ReplayScratch`] reused across its scenarios.
pub fn run(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    flows: &FlowSet,
    threads: usize,
) -> Vec<TrafficRow> {
    let base = AllPairs::compute_all_live(graph);
    let dense = DenseFib::from_base(graph, &base);
    let agent = pr.agent(graph);
    let ttl = generous_ttl(graph);

    run_units(
        family.len(),
        threads,
        ReplayScratch::new,
        |scratch: &mut ReplayScratch<pr_core::PrHeader>, scenario| {
            let failed = family.scenario(scenario);
            let traffic = replay_scenario_bitparallel(
                graph, &agent, &dense, &base, flows, &failed, ttl, scratch,
            );
            TrafficRow { scenario, failures: failed.len(), traffic }
        },
    )
}

/// The per-flow batched dataplane (PR 5's fast path, kept as the
/// middle rung of the throughput ladder): every flow walks the flat
/// FIB individually, survivor trees rebuilt by incremental repair.
/// Bit-identical to [`run`] and [`run_serial`].
pub fn run_batched(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    flows: &FlowSet,
    threads: usize,
) -> Vec<TrafficRow> {
    let base = AllPairs::compute_all_live(graph);
    let fib = Fib::from_base(graph, &base);
    let agent = pr.agent(graph);
    let ttl = generous_ttl(graph);

    run_units(
        family.len(),
        threads,
        ReplayScratch::new,
        |scratch: &mut ReplayScratch<pr_core::PrHeader>, scenario| {
            let failed = family.scenario(scenario);
            let traffic = replay_scenario(graph, &agent, &fib, &base, flows, &failed, ttl, scratch);
            TrafficRow { scenario, failures: failed.len(), traffic }
        },
    )
}

/// The serial per-packet reference: every flow walked one packet at a
/// time with fresh scratch state, no FIB, no repair ([`run`] must be
/// bit-identical to this at every thread count; the throughput
/// benchmark measures the batched dataplane against it).
pub fn run_serial(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    flows: &FlowSet,
) -> Vec<TrafficRow> {
    let base = AllPairs::compute_all_live(graph);
    let agent = pr.agent(graph);
    let ttl = generous_ttl(graph);
    ScenarioIter::new(family)
        .enumerate()
        .map(|(scenario, failed)| {
            let traffic = replay_scenario_naive(graph, &agent, &base, flows, &failed, ttl);
            TrafficRow { scenario, failures: failed.len(), traffic }
        })
        .collect()
}

/// Renders a sweep as CSV: one row per scenario.
pub fn rows_csv(rows: &[TrafficRow]) -> String {
    let mut out = String::from(
        "scenario,failures,flows,offered,delivered,lost,weighted_coverage,\
         demand_lost_fraction,max_link_load,max_link_utilisation\n",
    );
    for r in rows {
        let t = &r.traffic.tally;
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            r.scenario,
            r.failures,
            t.flows,
            t.offered,
            t.delivered,
            t.lost(),
            t.weighted_coverage(),
            t.demand_lost_fraction(),
            r.traffic.max_link_load,
            r.traffic.max_link_utilisation(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_scenarios::SingleLinkFailures;
    use pr_topologies::Isp;
    use pr_traffic::{GravityTraffic, UniformTraffic};

    #[test]
    fn abilene_single_failures_lose_no_demand_under_pr_dd() {
        let (g, emb) = crate::paper_topology(Isp::Abilene);
        let pr = PrNetwork::compile(
            &g,
            emb,
            pr_core::PrMode::DistanceDiscriminator,
            pr_core::DiscriminatorKind::Hops,
        );
        let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
        let singles = SingleLinkFailures::new(&g);
        let rows = run(&g, &pr, &singles, &flows, 2);
        assert_eq!(rows.len(), g.link_count());
        let s = summarize(&rows);
        assert_eq!(s.scenarios, g.link_count());
        assert_eq!(s.weighted_coverage(), 1.0, "PR-DD delivers all single-failure demand");
        assert_eq!(s.demand_lost_fraction(), 0.0);
        assert!(s.max_link_utilisation > 0.0 && s.max_link_utilisation < 1.0);
        assert!(s.peak_scenario.is_some());
        let csv = rows_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("scenario,failures,"));
    }

    #[test]
    fn uniform_summary_tally_is_integral() {
        let (g, emb) = crate::paper_topology(Isp::Abilene);
        let pr = PrNetwork::compile(
            &g,
            emb,
            pr_core::PrMode::DistanceDiscriminator,
            pr_core::DiscriminatorKind::Hops,
        );
        let flows = FlowSet::all_pairs(&UniformTraffic::new(&g));
        let singles = SingleLinkFailures::new(&g);
        let s = summarize(&run(&g, &pr, &singles, &flows, 2));
        assert_eq!(s.tally.offered.fract(), 0.0);
        assert_eq!(s.tally.evaluated.fract(), 0.0);
        assert_eq!(
            s.tally.offered,
            (g.link_count() * g.node_count() * (g.node_count() - 1)) as f64
        );
    }
}
