//! The stretch experiment — the paper's Figure 2.
//!
//! For each failure scenario and each (src, dst) pair whose
//! failure-free shortest path is *affected* (crosses a failed link)
//! and which remains connected, record the **stretch**: the ratio of
//! the cost of the path the scheme actually delivers over to the
//! failure-free shortest-path cost (§6). Per panel and scheme, the
//! paper plots the complementary CDF `P(stretch > x | path)`.
//!
//! The sweep routes through [`crate::engine`]; partial samples are
//! concatenated in work-unit order, so [`run`] is bit-identical to
//! [`run_serial`] at any thread count (enforced by
//! `tests/determinism.rs`).

use serde::{Deserialize, Serialize};

use pr_baselines::FcpAgent;
use pr_core::{
    generous_ttl, walk_packet, walk_packet_spliced, walk_packet_with, MemoStats, PrNetwork,
    SuffixMemo, WalkResult, WalkScratch,
};
use pr_graph::{AllPairs, Graph, NodeId, RepairStats, SpScratch, SpTree, TreeChildren};
use pr_scenarios::{ScenarioFamily, ScenarioIter};

use crate::engine::ScenarioSweep;

/// Scheme identifiers used in experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scheme {
    /// Post-convergence shortest paths (survivor optimum).
    Reconvergence,
    /// Failure-Carrying Packets.
    Fcp,
    /// Packet Re-cycling (distance-discriminator mode).
    PacketRecycling,
}

impl Scheme {
    /// All schemes, in the paper's legend order.
    pub const ALL: [Scheme; 3] = [Scheme::Reconvergence, Scheme::Fcp, Scheme::PacketRecycling];

    /// Label used in CSV headers (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Reconvergence => "reconvergence",
            Scheme::Fcp => "fcp",
            Scheme::PacketRecycling => "packet-recycling",
        }
    }
}

/// Raw stretch samples per scheme, plus bookkeeping on conditioning.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StretchSamples {
    /// Delivered-path stretch values, one per (scenario, affected pair).
    pub reconvergence: Vec<f64>,
    /// FCP stretch values.
    pub fcp: Vec<f64>,
    /// PR stretch values.
    pub packet_recycling: Vec<f64>,
    /// (scenario, pair) combinations whose endpoints were disconnected
    /// by the scenario (excluded by the paper's "| path" conditioning).
    pub disconnected_pairs: usize,
    /// Affected-and-connected pairs evaluated.
    pub evaluated_pairs: usize,
    /// Deliveries that failed although a path existed (should be zero
    /// for all three schemes on genus-0 embeddings; reported honestly).
    /// Always `undelivered_fcp + undelivered_pr` — reconvergence is a
    /// shortest-path computation and cannot fail on a connected pair.
    pub undelivered: usize,
    /// FCP walks that failed to deliver although a path existed.
    pub undelivered_fcp: usize,
    /// PR walks that failed to deliver although a path existed.
    pub undelivered_pr: usize,
}

impl StretchSamples {
    /// The sample vector for one scheme.
    pub fn of(&self, scheme: Scheme) -> &[f64] {
        match scheme {
            Scheme::Reconvergence => &self.reconvergence,
            Scheme::Fcp => &self.fcp,
            Scheme::PacketRecycling => &self.packet_recycling,
        }
    }

    /// Appends another partial result (work-unit order must be
    /// preserved by the caller for bit-identical output).
    fn absorb(&mut self, part: StretchSamples) {
        self.reconvergence.extend(part.reconvergence);
        self.fcp.extend(part.fcp);
        self.packet_recycling.extend(part.packet_recycling);
        self.disconnected_pairs += part.disconnected_pairs;
        self.evaluated_pairs += part.evaluated_pairs;
        self.undelivered += part.undelivered;
        self.undelivered_fcp += part.undelivered_fcp;
        self.undelivered_pr += part.undelivered_pr;
    }

    fn drop_fcp(&mut self) {
        self.undelivered += 1;
        self.undelivered_fcp += 1;
    }

    fn drop_pr(&mut self) {
        self.undelivered += 1;
        self.undelivered_pr += 1;
    }
}

/// Runs the stretch experiment for one topology over a failure
/// family's scenarios on `threads` workers, using a precompiled PR
/// network (its embedding is the expensive part — compile once, reuse
/// across panels). Scenarios stream from the family; an explicit
/// `Vec<LinkSet>` works too (it implements [`ScenarioFamily`]).
pub fn run(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    threads: usize,
) -> StretchSamples {
    run_with_stats(graph, pr, family, threads).0
}

/// Per-worker mutable state of the stretch sweep.
struct StretchWorker<'a> {
    fcp: FcpAgent<'a>,
    fcp_scratch: WalkScratch<pr_baselines::FcpState>,
    pr_scratch: WalkScratch<pr_core::PrHeader>,
    sp_scratch: SpScratch,
    /// Delivered-suffix memos (FCP, PR), evicted at every unit
    /// boundary and reused across units like `sp_scratch`. `None`
    /// walks every source in full — the unmemoized reference path.
    memos: Option<(SuffixMemo<pr_baselines::FcpState>, SuffixMemo<pr_core::PrHeader>)>,
    /// Affected-source buffer of the current unit, ascending node id.
    cone: Vec<NodeId>,
    /// DFS stack for the cone enumeration.
    stack: Vec<NodeId>,
}

/// Auxiliary statistics of one stretch sweep: live-tree incremental
/// repair counters plus walk-memo counters (FCP and PR memos summed),
/// merged over work units in unit order so totals are thread-count
/// invariant. This is what `pr sweep --stats` prints.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepStats {
    /// Shortest-path-tree repair counters.
    pub repair: RepairStats,
    /// Suffix-memo counters of the walk engine.
    pub memo: MemoStats,
}

impl SweepStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, other: &SweepStats) {
        self.repair.merge(&other.repair);
        self.memo.merge(&other.memo);
    }
}

/// [`run`], additionally reporting the sweep's auxiliary statistics
/// ([`SweepStats`]): the repair cone fraction is the share of
/// per-destination labels a scenario actually forced us to recompute,
/// and the memo hit rate / spliced share say how much walking the
/// suffix memo answered from cache.
pub fn run_with_stats(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    threads: usize,
) -> (StretchSamples, SweepStats) {
    let parts = sweep_parts(graph, pr, family, threads, true);
    let mut out = StretchSamples::default();
    let mut stats = SweepStats::default();
    for (part, part_stats) in parts {
        out.absorb(part);
        stats.merge(&part_stats);
    }
    (out, stats)
}

/// The engine-parallel sweep, returning one partial result per
/// (scenario × destination) work unit in unit order. [`run_with_stats`]
/// folds the units into one panel; [`run_rows`] folds them into
/// per-scenario aggregates for sharded checkpointing. `memoized`
/// toggles suffix splicing; both settings produce bit-identical
/// samples (enforced by `tests/determinism.rs` and the memo proptest).
fn sweep_parts(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    threads: usize,
    memoized: bool,
) -> Vec<(StretchSamples, SweepStats)> {
    let base = AllPairs::compute_all_live(graph);
    // Child index per destination tree, built once: lets every unit
    // enumerate its affected sources (the subtrees below failed tree
    // edges) in O(cone) instead of classifying all n nodes.
    let children: Vec<TreeChildren> =
        graph.nodes().map(|d| TreeChildren::build(graph, base.towards(d))).collect();
    let pr_agent = pr.agent(graph);
    let ttl = generous_ttl(graph);

    let sweep = ScenarioSweep::new(graph, family, &base, threads);
    sweep.run_with(
        || StretchWorker {
            fcp: FcpAgent::cached_with_base(graph, sweep.base()),
            fcp_scratch: WalkScratch::new(),
            pr_scratch: WalkScratch::new(),
            sp_scratch: SpScratch::new(),
            memos: memoized.then(|| (SuffixMemo::new(), SuffixMemo::new())),
            cone: Vec::new(),
            stack: Vec::new(),
        },
        // Scenario boundary: evict the FCP route memo (its keys are
        // subsets of the departing scenario's failures).
        |w, _| w.fcp.begin_scenario(),
        |w, unit| {
            let StretchWorker { fcp, fcp_scratch, pr_scratch, sp_scratch, memos, cone, stack } = w;
            let mut out = StretchSamples::default();
            // The affected sources, ascending — same set and order as
            // filtering `graph.nodes()` through `path_crosses`. An
            // empty cone means no base path towards `dst` crosses a
            // failure and the unit contributes nothing.
            unit.base_tree.affected_cone(
                graph,
                &children[unit.dst.index()],
                unit.failed,
                cone,
                stack,
            );
            if cone.is_empty() {
                return (out, SweepStats::default());
            }
            // Repair only the cone's distance labels: everything the
            // samples below read (the destination is never in the
            // cone — it is the tree root).
            unit.base_tree.repair_cone_labels(graph, unit.failed, cone, sp_scratch);
            // The debug-build cross-check against the reconvergence
            // agent's own tables (see `run_serial`) is per scenario
            // there; here it would recompute per unit, so it lives in
            // the serial reference only.
            if let Some((fcp_memo, pr_memo)) = memos {
                // Memoized path: suffixes are unit-scoped, so evict
                // before the first walk of this (failed, dst) unit.
                fcp_memo.begin_unit();
                pr_memo.begin_unit();
                for &src in cone.iter() {
                    debug_assert_ne!(src, unit.dst, "tree root cannot be below a tree edge");
                    let Some(reconv_cost) = sp_scratch.cone_cost(src) else {
                        out.disconnected_pairs += 1;
                        continue;
                    };
                    out.evaluated_pairs += 1;
                    let optimal = unit.base_tree.cost(src).expect("connected");

                    // Reconvergence: the survivor shortest path, by
                    // definition — no need to walk it.
                    out.reconvergence.push(reconv_cost as f64 / optimal as f64);

                    // FCP: walk with incremental failure discovery.
                    let w = walk_packet_spliced(
                        graph,
                        fcp,
                        src,
                        unit.dst,
                        unit.failed,
                        ttl,
                        fcp_scratch,
                        fcp_memo,
                    );
                    if w.result.is_delivered() {
                        out.fcp.push(w.cost as f64 / optimal as f64);
                    } else {
                        out.drop_fcp();
                    }

                    // PR: cycle following.
                    let w = walk_packet_spliced(
                        graph,
                        &pr_agent,
                        src,
                        unit.dst,
                        unit.failed,
                        ttl,
                        pr_scratch,
                        pr_memo,
                    );
                    match w.result {
                        WalkResult::Delivered => {
                            out.packet_recycling.push(w.cost as f64 / optimal as f64)
                        }
                        WalkResult::Dropped(_) => out.drop_pr(),
                    }
                }
                let mut memo_stats = fcp_memo.take_stats();
                memo_stats.merge(&pr_memo.take_stats());
                return (out, SweepStats { repair: sp_scratch.take_stats(), memo: memo_stats });
            }
            // Plain path: identical walks without splicing — the
            // reference the determinism tests compare against.
            for &src in cone.iter() {
                debug_assert_ne!(src, unit.dst, "tree root cannot be below a tree edge");
                let Some(reconv_cost) = sp_scratch.cone_cost(src) else {
                    out.disconnected_pairs += 1;
                    continue;
                };
                out.evaluated_pairs += 1;
                let optimal = unit.base_tree.cost(src).expect("connected");

                out.reconvergence.push(reconv_cost as f64 / optimal as f64);

                match walk_packet_with(graph, fcp, src, unit.dst, unit.failed, ttl, fcp_scratch) {
                    w if w.result.is_delivered() => {
                        out.fcp.push(w.cost(graph) as f64 / optimal as f64)
                    }
                    _ => out.drop_fcp(),
                }

                let w =
                    walk_packet_with(graph, &pr_agent, src, unit.dst, unit.failed, ttl, pr_scratch);
                match w.result {
                    WalkResult::Delivered => {
                        out.packet_recycling.push(w.cost(graph) as f64 / optimal as f64)
                    }
                    WalkResult::Dropped(_) => out.drop_pr(),
                }
            }
            (out, SweepStats { repair: sp_scratch.take_stats(), memo: MemoStats::default() })
        },
    )
}

/// Per-scenario aggregate of the stretch sweep — the unit of sharded
/// checkpointing (see [`crate::shards`]). A row carries everything the
/// CSV/report artefacts need — integer CCDF counts at [`figure2_xs`],
/// per-scheme sums and maxima — at O(1) size per scenario, so
/// checkpoints of 1,000-node sweeps stay kilobytes where raw sample
/// vectors would be hundreds of megabytes.
///
/// Determinism: a row is folded from its scenario's work units in unit
/// order, entirely within one shard (shards split on scenario
/// boundaries), so rows are invariant to thread *and* shard counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// Index of the scenario in the (unsliced) family.
    pub scenario: u64,
    /// Number of links the scenario fails.
    pub failures: u64,
    /// Affected-and-connected pairs evaluated.
    pub evaluated_pairs: u64,
    /// Affected pairs excluded because the scenario disconnected them.
    pub disconnected_pairs: u64,
    /// Deliveries that failed although a path existed (FCP + PR).
    pub undelivered: u64,
    /// FCP walks that failed to deliver although a path existed.
    pub undelivered_fcp: u64,
    /// PR walks that failed to deliver although a path existed.
    pub undelivered_pr: u64,
    /// Sample count per scheme ([`Scheme::ALL`] order).
    pub samples: [u64; 3],
    /// Sum of stretch values per scheme, added in sample order.
    pub sum: [f64; 3],
    /// Maximum stretch per scheme (0 when the scheme has no samples).
    pub max: [f64; 3],
    /// CCDF counts, scheme-major: `above[s * xs + i]` is the number of
    /// scheme-`s` samples strictly above `figure2_xs()[i]`.
    pub above: Vec<u64>,
}

impl ScenarioRow {
    /// Aggregates one scenario's samples at the CCDF thresholds `xs`.
    fn from_samples(scenario: u64, failures: u64, s: &StretchSamples, xs: &[f64]) -> ScenarioRow {
        let mut samples = [0u64; 3];
        let mut sum = [0.0f64; 3];
        let mut max = [0.0f64; 3];
        let mut above = vec![0u64; 3 * xs.len()];
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            let v = s.of(*scheme);
            samples[i] = v.len() as u64;
            for &value in v {
                sum[i] += value;
                max[i] = max[i].max(value);
            }
            for (j, &x) in xs.iter().enumerate() {
                above[i * xs.len() + j] = v.iter().filter(|&&s| s > x).count() as u64;
            }
        }
        ScenarioRow {
            scenario,
            failures,
            evaluated_pairs: s.evaluated_pairs as u64,
            disconnected_pairs: s.disconnected_pairs as u64,
            undelivered: s.undelivered as u64,
            undelivered_fcp: s.undelivered_fcp as u64,
            undelivered_pr: s.undelivered_pr as u64,
            samples,
            sum,
            max,
            above,
        }
    }
}

/// Runs the stretch sweep over `family` and folds it into one
/// [`ScenarioRow`] per scenario, with row indices offset by
/// `first_scenario` (pass a [`pr_scenarios::ScenarioSlice`] plus its
/// start to sweep one shard of a larger family).
pub fn run_rows(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    threads: usize,
    first_scenario: usize,
) -> Vec<ScenarioRow> {
    run_rows_memoized(graph, pr, family, threads, first_scenario, true)
}

/// [`run_rows`] with suffix memoization disabled: every source is
/// walked in full. This is the reference the determinism tests (and
/// the recorded isp-1000 before/after numbers) compare the memoized
/// sweep against — the rows must be bit-identical.
pub fn run_rows_plain(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    threads: usize,
    first_scenario: usize,
) -> Vec<ScenarioRow> {
    run_rows_memoized(graph, pr, family, threads, first_scenario, false)
}

fn run_rows_memoized(
    graph: &Graph,
    pr: &PrNetwork,
    family: &dyn ScenarioFamily,
    threads: usize,
    first_scenario: usize,
    memoized: bool,
) -> Vec<ScenarioRow> {
    let n = graph.node_count().max(1);
    let xs = figure2_xs();
    let parts = sweep_parts(graph, pr, family, threads, memoized);
    let mut rows = Vec::with_capacity(family.len());
    let mut acc = StretchSamples::default();
    for (idx, (part, _stats)) in parts.into_iter().enumerate() {
        acc.absorb(part);
        if (idx + 1) % n == 0 {
            let scenario = idx / n;
            let failures = family.scenario(scenario).len() as u64;
            let absolute = (first_scenario + scenario) as u64;
            rows.push(ScenarioRow::from_samples(absolute, failures, &acc, &xs));
            acc = StretchSamples::default();
        }
    }
    rows
}

/// [`panel_csv`] reconstructed from per-scenario rows: byte-identical
/// to the raw-sample rendering, because the CCDF numerators are exact
/// integer sums over rows and the denominators are the exact totals.
/// `xs` must be the thresholds the rows were aggregated at
/// ([`figure2_xs`]).
pub fn panel_csv_from_rows(rows: &[ScenarioRow], xs: &[f64]) -> String {
    assert!(
        rows.iter().all(|r| r.above.len() == 3 * xs.len()),
        "rows were aggregated at a different threshold set"
    );
    let mut totals = [0u64; 3];
    for row in rows {
        for (total, &n) in totals.iter_mut().zip(&row.samples) {
            *total += n;
        }
    }
    let mut out = String::from("stretch,reconvergence,fcp,packet-recycling\n");
    for (i, &x) in xs.iter().enumerate() {
        let p = |s: usize| {
            if totals[s] == 0 {
                0.0
            } else {
                let above: u64 = rows.iter().map(|r| r.above[s * xs.len() + i]).sum();
                above as f64 / totals[s] as f64
            }
        };
        out.push_str(&format!("{},{:.6},{:.6},{:.6}\n", x, p(0), p(1), p(2)));
    }
    out
}

/// The merged result of a sharded sweep: totals, per-scheme means and
/// maxima, and the CCDF curves — everything `pr sweep --format json`
/// reports for a sharded run. Derived from rows in scenario order, so
/// it is bit-identical at any thread or shard count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Scenarios swept.
    pub scenarios: u64,
    /// Affected-and-connected pairs evaluated.
    pub evaluated_pairs: u64,
    /// Affected pairs excluded as disconnected.
    pub disconnected_pairs: u64,
    /// Deliveries that failed although a path existed (FCP + PR).
    pub undelivered: u64,
    /// FCP walks that failed to deliver although a path existed.
    pub undelivered_fcp: u64,
    /// PR walks that failed to deliver although a path existed.
    pub undelivered_pr: u64,
    /// Sample count per scheme ([`Scheme::ALL`] order).
    pub samples: [u64; 3],
    /// Mean stretch per scheme (null when the scheme has no samples).
    pub mean: [f64; 3],
    /// Maximum stretch per scheme (null when the scheme has no
    /// samples).
    pub max: [f64; 3],
    /// CCDF thresholds (the x axis of the paper's Figure 2).
    pub xs: Vec<f64>,
    /// `P(stretch > x)` per scheme at each threshold.
    pub ccdf: [Vec<f64>; 3],
}

/// Folds merged rows (in scenario order) into a [`SweepReport`].
pub fn report_from_rows(rows: &[ScenarioRow], xs: &[f64]) -> SweepReport {
    assert!(
        rows.iter().all(|r| r.above.len() == 3 * xs.len()),
        "rows were aggregated at a different threshold set"
    );
    let mut report = SweepReport {
        scenarios: rows.len() as u64,
        evaluated_pairs: 0,
        disconnected_pairs: 0,
        undelivered: 0,
        undelivered_fcp: 0,
        undelivered_pr: 0,
        samples: [0; 3],
        mean: [f64::NAN; 3],
        max: [f64::NAN; 3],
        xs: xs.to_vec(),
        ccdf: [Vec::new(), Vec::new(), Vec::new()],
    };
    let mut sum = [0.0f64; 3];
    for row in rows {
        report.evaluated_pairs += row.evaluated_pairs;
        report.disconnected_pairs += row.disconnected_pairs;
        report.undelivered += row.undelivered;
        report.undelivered_fcp += row.undelivered_fcp;
        report.undelivered_pr += row.undelivered_pr;
        #[allow(clippy::needless_range_loop)]
        for s in 0..3 {
            report.samples[s] += row.samples[s];
            sum[s] += row.sum[s];
        }
    }
    #[allow(clippy::needless_range_loop)]
    for s in 0..3 {
        if report.samples[s] > 0 {
            report.mean[s] = sum[s] / report.samples[s] as f64;
            report.max[s] = rows.iter().map(|r| r.max[s]).fold(0.0, f64::max);
        }
        report.ccdf[s] = (0..xs.len())
            .map(|i| {
                if report.samples[s] == 0 {
                    0.0
                } else {
                    let above: u64 = rows.iter().map(|r| r.above[s * xs.len() + i]).sum();
                    above as f64 / report.samples[s] as f64
                }
            })
            .collect();
    }
    report
}

/// The serial reference implementation: the seed harness's nested loop
/// with the honest recompute-per-decision FCP agent. [`run`] must be
/// bit-identical to this at every thread count.
pub fn run_serial(graph: &Graph, pr: &PrNetwork, family: &dyn ScenarioFamily) -> StretchSamples {
    let base = AllPairs::compute_all_live(graph);
    let fcp = FcpAgent::new(graph);
    let pr_agent = pr.agent(graph);
    let ttl = generous_ttl(graph);
    let mut out = StretchSamples::default();

    for failed in ScenarioIter::new(family) {
        let failed = &failed;
        #[cfg(debug_assertions)]
        let reconv = pr_baselines::ReconvergenceAgent::converged_on(graph, failed);
        for dst in graph.nodes() {
            let base_tree = base.towards(dst);
            let live_tree = SpTree::towards(graph, dst, failed);
            for src in graph.nodes() {
                if src == dst {
                    continue;
                }
                // Affected = the canonical failure-free path crosses a
                // failed link.
                let base_path = base_tree.path_darts(graph, src).expect("connected base graph");
                if !base_path.iter().any(|d| failed.contains_dart(*d)) {
                    continue;
                }
                if !live_tree.reaches(src) {
                    out.disconnected_pairs += 1;
                    continue;
                }
                out.evaluated_pairs += 1;
                let optimal = base_tree.cost(src).expect("connected");

                // Reconvergence: the survivor shortest path, by
                // definition — no need to walk it.
                let reconv_cost = live_tree.cost(src).expect("connected");
                out.reconvergence.push(reconv_cost as f64 / optimal as f64);
                #[cfg(debug_assertions)]
                debug_assert_eq!(reconv.converged_cost(src, dst), Some(reconv_cost));

                // FCP: walk with incremental failure discovery.
                match walk_packet(graph, &fcp, src, dst, failed, ttl) {
                    w if w.result.is_delivered() => {
                        out.fcp.push(w.cost(graph) as f64 / optimal as f64)
                    }
                    _ => out.drop_fcp(),
                }

                // PR: cycle following.
                let w = walk_packet(graph, &pr_agent, src, dst, failed, ttl);
                match w.result {
                    WalkResult::Delivered => {
                        out.packet_recycling.push(w.cost(graph) as f64 / optimal as f64)
                    }
                    WalkResult::Dropped(_) => out.drop_pr(),
                }
            }
        }
    }
    out
}

/// Evaluates `P(sample > x)` at each of `xs` — the paper's CCDF.
pub fn ccdf(samples: &[f64], xs: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return xs.iter().map(|&x| (x, 0.0)).collect();
    }
    let n = samples.len() as f64;
    xs.iter()
        .map(|&x| {
            let above = samples.iter().filter(|&&s| s > x).count() as f64;
            (x, above / n)
        })
        .collect()
}

/// The x-axis of the paper's Figure 2: stretch 1 to 15.
pub fn figure2_xs() -> Vec<f64> {
    (0..=28).map(|i| 1.0 + i as f64 * 0.5).collect()
}

/// Renders one panel as CSV: `x, reconvergence, fcp, packet-recycling`.
pub fn panel_csv(samples: &StretchSamples, xs: &[f64]) -> String {
    let r = ccdf(&samples.reconvergence, xs);
    let f = ccdf(&samples.fcp, xs);
    let p = ccdf(&samples.packet_recycling, xs);
    let mut out = String::from("stretch,reconvergence,fcp,packet-recycling\n");
    for i in 0..xs.len() {
        out.push_str(&format!("{},{:.6},{:.6},{:.6}\n", r[i].0, r[i].1, f[i].1, p[i].1));
    }
    out
}

/// Summary statistics for the EXPERIMENTS.md table.
#[derive(Debug, Clone, Serialize)]
pub struct PanelSummary {
    /// Median stretch per scheme.
    pub median: [f64; 3],
    /// 95th-percentile stretch per scheme.
    pub p95: [f64; 3],
    /// Maximum stretch per scheme.
    pub max: [f64; 3],
    /// Probability that stretch exceeds 1 (i.e. the scheme pays any
    /// detour at all), per scheme.
    pub p_above_one: [f64; 3],
}

/// Computes the summary for one panel (schemes in [`Scheme::ALL`]
/// order).
pub fn summarize(samples: &StretchSamples) -> PanelSummary {
    fn quantile(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return f64::NAN;
        }
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
    let mut median = [0.0; 3];
    let mut p95 = [0.0; 3];
    let mut max = [0.0; 3];
    let mut p_above_one = [0.0; 3];
    for (i, scheme) in Scheme::ALL.iter().enumerate() {
        let mut v = samples.of(*scheme).to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("stretch values are finite"));
        median[i] = quantile(&v, 0.5);
        p95[i] = quantile(&v, 0.95);
        max[i] = v.last().copied().unwrap_or(f64::NAN);
        p_above_one[i] = if v.is_empty() {
            f64::NAN
        } else {
            v.iter().filter(|&&s| s > 1.0 + 1e-12).count() as f64 / v.len() as f64
        };
    }
    PanelSummary { median, p95, max, p_above_one }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use pr_core::{DiscriminatorKind, PrMode};
    use pr_embedding::CellularEmbedding;

    fn compile_pr(graph: &Graph) -> PrNetwork {
        let rot = pr_embedding::heuristics::thorough(graph, 2010, 4, 10_000);
        let emb = CellularEmbedding::new(graph, rot).unwrap();
        PrNetwork::compile(graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops)
    }

    #[test]
    fn abilene_single_failures_have_expected_shape() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let pr = compile_pr(&g);
        let scenarios = scenario::all_single_failures(&g);
        let samples = run(&g, &pr, &scenarios, 2);

        assert_eq!(samples.undelivered, 0, "all three schemes must deliver");
        assert_eq!(samples.undelivered_fcp, 0);
        assert_eq!(samples.undelivered_pr, 0);
        assert_eq!(samples.disconnected_pairs, 0, "Abilene is 2-edge-connected");
        assert!(samples.evaluated_pairs > 0);
        assert_eq!(samples.reconvergence.len(), samples.packet_recycling.len());

        // Shape: reconvergence ≤ FCP ≤ PR in the mean.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mr, mf, mp) =
            (mean(&samples.reconvergence), mean(&samples.fcp), mean(&samples.packet_recycling));
        assert!(mr <= mf + 1e-12, "reconvergence {mr} > fcp {mf}");
        assert!(mf <= mp + 1e-12, "fcp {mf} > pr {mp}");
        assert!(mr >= 1.0);
    }

    #[test]
    fn ccdf_is_monotone_decreasing_from_at_most_one() {
        let samples = vec![1.0, 1.5, 2.0, 2.0, 7.5];
        let xs = figure2_xs();
        let curve = ccdf(&samples, &xs);
        assert_eq!(curve.len(), xs.len());
        assert!(curve[0].1 <= 1.0);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        // P(stretch > 15) = 0 in this sample set.
        assert_eq!(curve.last().unwrap().1, 0.0);
    }

    #[test]
    fn ccdf_of_empty_is_zero() {
        let xs = [1.0, 2.0];
        assert_eq!(ccdf(&[], &xs), vec![(1.0, 0.0), (2.0, 0.0)]);
    }

    #[test]
    fn panel_csv_has_header_and_rows() {
        let s = StretchSamples {
            reconvergence: vec![1.0, 1.2],
            fcp: vec![1.1, 1.4],
            packet_recycling: vec![1.3, 2.0],
            ..Default::default()
        };
        let xs = [1.0, 1.5];
        let csv = panel_csv(&s, &xs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "stretch,reconvergence,fcp,packet-recycling");
        assert!(lines[1].starts_with("1,"));
    }

    #[test]
    fn rows_reproduce_the_raw_sample_panel_byte_for_byte() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let pr = compile_pr(&g);
        let family = pr_scenarios::SingleLinkFailures::new(&g);
        let xs = figure2_xs();

        let samples = run(&g, &pr, &family, 2);
        let rows = run_rows(&g, &pr, &family, 2, 0);
        assert_eq!(rows.len(), family.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.scenario, i as u64);
            assert_eq!(row.failures, 1);
        }
        // The CSV artefact reconstructed from rows is byte-identical to
        // the raw-sample rendering (integer CCDF numerators, exact
        // totals).
        assert_eq!(panel_csv_from_rows(&rows, &xs), panel_csv(&samples, &xs));
        // Totals line up with the folded panel.
        let report = report_from_rows(&rows, &xs);
        assert_eq!(report.evaluated_pairs, samples.evaluated_pairs as u64);
        assert_eq!(report.samples[0], samples.reconvergence.len() as u64);
        assert_eq!(report.undelivered, samples.undelivered as u64);
        assert_eq!(report.undelivered_fcp + report.undelivered_pr, report.undelivered);

        // The unmemoized reference path folds to bit-identical rows.
        assert_eq!(run_rows_plain(&g, &pr, &family, 2, 0), rows);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((report.mean[2] - mean(&samples.packet_recycling)).abs() < 1e-12);

        // Rows survive the JSON checkpoint round-trip bit-for-bit
        // (shortest-roundtrip f64 rendering).
        let text = serde_json::to_string_pretty(&rows).unwrap();
        let back: Vec<ScenarioRow> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn rows_offset_and_slice_like_shards_do() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let pr = compile_pr(&g);
        let family = pr_scenarios::SingleLinkFailures::new(&g);
        let whole = run_rows(&g, &pr, &family, 1, 0);
        // Sweeping two slices and concatenating gives the same rows.
        let mid = family.len() / 2;
        let left = pr_scenarios::ScenarioSlice::new(&family, 0, mid);
        let right = pr_scenarios::ScenarioSlice::new(&family, mid, family.len() - mid);
        let mut stitched = run_rows(&g, &pr, &left, 2, 0);
        stitched.extend(run_rows(&g, &pr, &right, 2, mid));
        assert_eq!(stitched, whole);
    }

    #[test]
    fn report_of_empty_rows_is_well_formed() {
        let xs = figure2_xs();
        let report = report_from_rows(&[], &xs);
        assert_eq!(report.scenarios, 0);
        assert!(report.mean[0].is_nan());
        assert!(report.ccdf[1].iter().all(|&p| p == 0.0));
        let csv = panel_csv_from_rows(&[], &xs);
        assert_eq!(csv.lines().count(), xs.len() + 1);
    }

    #[test]
    fn summary_quantiles() {
        let s = StretchSamples {
            reconvergence: vec![1.0; 100],
            fcp: (0..100).map(|i| 1.0 + i as f64 / 100.0).collect(),
            packet_recycling: vec![3.0; 100],
            ..Default::default()
        };
        let sum = summarize(&s);
        assert_eq!(sum.median[0], 1.0);
        assert!((sum.median[1] - 1.495).abs() < 0.01);
        assert_eq!(sum.max[2], 3.0);
        assert_eq!(sum.p_above_one[0], 0.0);
        assert_eq!(sum.p_above_one[2], 1.0);
    }
}
