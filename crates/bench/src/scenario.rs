//! Failure-scenario construction shared by all experiments.
//!
//! The scenario model itself graduated to its own layer — the
//! [`pr_scenarios`] crate, whose [`ScenarioFamily`] trait streams
//! scenarios by index instead of materialising `Vec<LinkSet>`s. This
//! module keeps the historical helper functions as thin delegates for
//! callers that want explicit lists; sweeps should construct families
//! and hand them to [`crate::engine::ScenarioSweep`] directly.
//!
//! [`ScenarioFamily`]: pr_scenarios::ScenarioFamily

use pr_graph::{Graph, LinkSet};
use pr_scenarios::{FailureDraw, SampledMultiFailures, ScenarioFamily, SingleLinkFailures};

/// Every single-link failure scenario of `graph` (exhaustive — this is
/// what Figure 2(a–c) sweeps), as an explicit list.
///
/// Prefer streaming [`SingleLinkFailures`] in sweeps.
pub fn all_single_failures(graph: &Graph) -> Vec<LinkSet> {
    let fam = SingleLinkFailures::new(graph);
    fam.scenarios().collect()
}

/// Samples a random non-disconnecting failure set of up to `k` links.
/// Deterministic in `seed`. The returned [`FailureDraw`] makes any
/// shortfall (the graph could not lose `k` links) explicit; callers
/// that know their request is feasible assert
/// [`FailureDraw::is_complete`].
pub fn random_connected_failures(graph: &Graph, k: usize, seed: u64) -> FailureDraw {
    pr_scenarios::random_connected_failures(graph, k, seed)
}

/// `count` sampled multi-failure scenarios (Figure 2(d–f) style),
/// deduplicated and backfilled — see [`SampledMultiFailures`].
pub fn sampled_multi_failures(
    graph: &Graph,
    k: usize,
    count: usize,
    base_seed: u64,
) -> Vec<LinkSet> {
    SampledMultiFailures::new(graph, k, count, base_seed).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_graph::{algo, generators, LinkId};

    #[test]
    fn single_failures_cover_every_link() {
        let g = generators::ring(5, 1);
        let all = all_single_failures(&g);
        assert_eq!(all.len(), 5);
        for (i, f) in all.iter().enumerate() {
            assert_eq!(f.len(), 1);
            assert!(f.contains(LinkId(i as u32)));
        }
    }

    #[test]
    fn sampled_failures_preserve_connectivity_and_are_distinct() {
        let g = generators::complete(8, 1);
        let sets = sampled_multi_failures(&g, 10, 20, 99);
        assert_eq!(sets.len(), 20);
        let mut seen = std::collections::HashSet::new();
        for f in sets {
            assert_eq!(f.len(), 10);
            assert!(algo::is_connected(&g, &f));
            assert!(seen.insert(f), "duplicate scenario survived dedup");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = generators::complete(7, 1);
        assert_eq!(random_connected_failures(&g, 5, 3), random_connected_failures(&g, 5, 3));
    }

    #[test]
    fn greedy_respects_bridges_with_explicit_shortfall() {
        // On a ring, at most one link can fail without disconnection —
        // and the draw now says so instead of silently under-failing.
        let g = generators::ring(6, 1);
        let draw = random_connected_failures(&g, 4, 1);
        assert_eq!(draw.links.len(), 1, "a ring tolerates exactly one failure");
        assert_eq!(draw.shortfall(), 3);
        assert!(!draw.is_complete());
    }
}
