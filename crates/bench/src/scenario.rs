//! Failure-scenario construction shared by all experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pr_graph::{algo, Graph, LinkId, LinkSet};

/// Every single-link failure scenario of `graph` (exhaustive — this is
/// what Figure 2(a–c) sweeps).
pub fn all_single_failures(graph: &Graph) -> Vec<LinkSet> {
    graph.links().map(|l| LinkSet::from_links(graph.link_count(), [l])).collect()
}

/// Samples a random non-disconnecting failure set of exactly `k` links
/// (or as many as can be removed while staying connected), by
/// shuffling the links and greedily failing those that keep the graph
/// connected. Deterministic in `seed`.
pub fn random_connected_failures(graph: &Graph, k: usize, seed: u64) -> LinkSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failed = LinkSet::empty(graph.link_count());
    let mut candidates: Vec<LinkId> = graph.links().collect();
    candidates.shuffle(&mut rng);
    for l in candidates {
        if failed.len() >= k {
            break;
        }
        if algo::connected_after(graph, &failed, l) {
            failed.insert(l);
        }
    }
    failed
}

/// `count` sampled multi-failure scenarios (Figure 2(d–f) style).
pub fn sampled_multi_failures(
    graph: &Graph,
    k: usize,
    count: usize,
    base_seed: u64,
) -> Vec<LinkSet> {
    (0..count)
        .map(|i| random_connected_failures(graph, k, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_graph::generators;

    #[test]
    fn single_failures_cover_every_link() {
        let g = generators::ring(5, 1);
        let all = all_single_failures(&g);
        assert_eq!(all.len(), 5);
        for (i, f) in all.iter().enumerate() {
            assert_eq!(f.len(), 1);
            assert!(f.contains(LinkId(i as u32)));
        }
    }

    #[test]
    fn sampled_failures_preserve_connectivity() {
        let g = generators::complete(8, 1);
        for f in sampled_multi_failures(&g, 10, 20, 99) {
            assert_eq!(f.len(), 10);
            assert!(algo::is_connected(&g, &f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = generators::complete(7, 1);
        assert_eq!(random_connected_failures(&g, 5, 3), random_connected_failures(&g, 5, 3));
    }

    #[test]
    fn greedy_respects_bridges() {
        // On a ring, at most one link can fail without disconnection.
        let g = generators::ring(6, 1);
        let f = random_connected_failures(&g, 4, 1);
        assert_eq!(f.len(), 1, "a ring tolerates exactly one failure");
    }
}
