//! Overhead accounting (E8/E9): the paper's §6 comparison, measured on
//! the real encoders and tables rather than asserted.

use serde::Serialize;

use pr_baselines::FcpAgent;
use pr_core::{DiscriminatorKind, MemoryFootprint, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_graph::Graph;
use pr_topologies::Isp;

/// Per-topology overhead summary.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadReport {
    /// Topology label.
    pub topology: String,
    /// Nodes / links.
    pub nodes: usize,
    /// Links.
    pub links: usize,
    /// Hop diameter (drives the paper's `log2(d)` sizing).
    pub hop_diameter: u64,
    /// PR basic mode header bits (always 1).
    pub pr_basic_bits: u8,
    /// PR DD-mode header bits with the hop-count discriminator.
    pub pr_dd_hops_bits: u8,
    /// PR DD-mode header bits with the weighted-cost discriminator.
    pub pr_dd_cost_bits: u8,
    /// Whether the hop-DD header fits DSCP pool 2 (§6's deployment
    /// suggestion).
    pub pr_fits_dscp_pool2: bool,
    /// FCP header bits as a function of carried failures 1, 2, 4, 8.
    pub fcp_bits_by_failures: [usize; 4],
    /// Worst-case per-router memory PR adds (DD column + cycle table).
    pub pr_added_bytes_max: usize,
    /// Total per-router memory including the conventional table, worst
    /// router.
    pub total_bytes_max: usize,
    /// Flooding messages a reconvergence episode costs (2 LSAs per
    /// link as the standard estimate) — PR and FCP need none.
    pub reconvergence_flood_msgs: usize,
}

/// Builds the reports for a list of paper topologies, one worker per
/// topology (the embedding search inside [`crate::paper_topology`] is
/// the expensive part). Output order follows `isps` regardless of
/// thread count, via the engine's deterministic merge.
pub fn reports_for(isps: &[Isp], threads: usize) -> Vec<OverheadReport> {
    crate::engine::parallel_map(isps, threads, |_, &isp| {
        let (graph, embedding) = crate::paper_topology(isp);
        report(isp.name(), &graph, &embedding)
    })
}

/// Builds the overhead report for one topology.
pub fn report(name: &str, graph: &Graph, embedding: &CellularEmbedding) -> OverheadReport {
    let hops_net = PrNetwork::compile(
        graph,
        embedding.clone(),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::Hops,
    );
    let cost_net = PrNetwork::compile(
        graph,
        embedding.clone(),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::WeightedCost,
    );
    let basic_net =
        PrNetwork::compile(graph, embedding.clone(), PrMode::Basic, DiscriminatorKind::Hops);
    let fcp = FcpAgent::new(graph);
    let fcp_bits = |carried: usize| FcpAgent::LENGTH_FIELD_BITS + carried * fcp.link_id_bits();

    let footprints: Vec<MemoryFootprint> =
        graph.nodes().map(|n| hops_net.memory_footprint(graph, n)).collect();

    OverheadReport {
        topology: name.to_string(),
        nodes: graph.node_count(),
        links: graph.link_count(),
        hop_diameter: hops_net.routing().max_discriminator(DiscriminatorKind::Hops),
        pr_basic_bits: basic_net.codec().total_bits(),
        pr_dd_hops_bits: hops_net.codec().total_bits(),
        pr_dd_cost_bits: cost_net.codec().total_bits(),
        pr_fits_dscp_pool2: hops_net.codec().fits_in_dscp_pool2(),
        fcp_bits_by_failures: [fcp_bits(1), fcp_bits(2), fcp_bits(4), fcp_bits(8)],
        pr_added_bytes_max: footprints.iter().map(|f| f.pr_added_bytes()).max().unwrap_or(0),
        total_bytes_max: footprints.iter().map(|f| f.total_bytes()).max().unwrap_or(0),
        reconvergence_flood_msgs: graph.link_count() * 2,
    }
}

/// Renders the E8 table.
pub fn render(reports: &[OverheadReport]) -> String {
    let mut out = String::from(
        "topology    nodes links diam  pr-basic pr-dd(hops) pr-dd(cost) dscp2 fcp(1/2/4/8 failures)      pr-mem(B) flood-msgs\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{:<11} {:>5} {:>5} {:>4}  {:>8} {:>11} {:>11} {:>5} {:>4}/{:>3}/{:>3}/{:>3} bits{:>10} {:>10}\n",
            r.topology,
            r.nodes,
            r.links,
            r.hop_diameter,
            format!("{} bit", r.pr_basic_bits),
            format!("{} bits", r.pr_dd_hops_bits),
            format!("{} bits", r.pr_dd_cost_bits),
            if r.pr_fits_dscp_pool2 { "yes" } else { "no" },
            r.fcp_bits_by_failures[0],
            r.fcp_bits_by_failures[1],
            r.fcp_bits_by_failures[2],
            r.fcp_bits_by_failures[3],
            r.pr_added_bytes_max,
            r.reconvergence_flood_msgs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_overheads_match_paper_sizing() {
        // Distance weighting so the weighted-cost discriminator really
        // differs from hop counts.
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let rot = pr_embedding::heuristics::thorough(&g, 1, 4, 10_000);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let r = report("abilene", &g, &emb);
        assert_eq!(r.pr_basic_bits, 1, "§4.2: a single bit");
        // Abilene hop diameter is 5 → 3 DD bits + PR bit = 4 bits,
        // exactly the paper's `log2(d)` sizing, fitting DSCP pool 2.
        assert_eq!(r.hop_diameter, 5);
        assert_eq!(r.pr_dd_hops_bits, 4);
        assert!(r.pr_fits_dscp_pool2);
        // Weighted-cost DD needs far more bits — the reason the paper
        // suggests hops.
        assert!(r.pr_dd_cost_bits > r.pr_dd_hops_bits);
        // FCP grows linearly in carried failures; PR does not.
        assert!(r.fcp_bits_by_failures[3] > r.fcp_bits_by_failures[0]);
        assert_eq!(
            r.fcp_bits_by_failures[1] - r.fcp_bits_by_failures[0],
            FcpAgent::new(&g).link_id_bits()
        );
    }

    #[test]
    fn render_contains_all_topologies() {
        let g = pr_graph::generators::ring(4, 1);
        let emb = CellularEmbedding::new(&g, pr_embedding::RotationSystem::identity(&g)).unwrap();
        let reports = vec![report("ring4", &g, &emb)];
        let text = render(&reports);
        assert!(text.contains("ring4"));
        assert!(text.lines().count() == 2);
    }
}
