//! Temporal (discrete-event) experiment sweeps through the parallel
//! engine.
//!
//! PR 2 gave the *topological* experiments (coverage, stretch) the
//! work-unit engine; this module ports the *temporal* ones — §1's
//! OC-192 outage arithmetic, detection-delay sensitivity, and §7 link
//! flapping — onto the same machinery. A [`TemporalFamily`] enumerates
//! timed scenarios by index; each index is one engine work unit that
//! replays the scenario through `pr_sim` under two schemes (PR and a
//! reconverging IGP) and returns their [`Metrics`].
//!
//! **Determinism.** Scenario `i` runs with the RNG seed
//! [`TemporalFamily::seed_for`]`(base_seed, i)` — a pure hash of
//! `(base_seed, i)`, never a shared RNG stream — and the engine merges
//! results in unit order. [`run`] is therefore bit-identical to
//! [`run_serial`] at any thread count (`tests/determinism.rs` asserts
//! this for all three shipped families at 1/2/4 threads).
//!
//! **Hoisting.** The compiled PR network, its agent and the
//! failure-free all-pairs trees (the reconverging IGP's *stale* view)
//! are scenario-invariant and built once per sweep; each unit builds
//! only its own scenario and the IGP's post-failure tables.

use serde::Serialize;

use std::sync::Arc;

use pr_core::PrNetwork;
use pr_graph::{AllPairs, Graph, SpScratch};
use pr_scenarios::TemporalFamily;
use pr_sim::{igp_for_with, run_scenario, Metrics, SimConfig, Static};

use crate::engine;

/// Outcome of one timed scenario under both schemes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TemporalRow {
    /// Scenario index within its family.
    pub scenario: usize,
    /// Scenario label (e.g. `"outage:LON-PAR"`).
    pub label: String,
    /// Packet Re-cycling's run.
    pub pr: Metrics,
    /// The reconverging IGP's run on the identical trace and traffic.
    pub igp: Metrics,
}

/// Sweeps every scenario of `family` on `threads` workers.
pub fn run(
    graph: &Graph,
    net: &PrNetwork,
    family: &dyn TemporalFamily,
    config: &SimConfig,
    base_seed: u64,
    threads: usize,
) -> Vec<TemporalRow> {
    let agent = Static(net.agent(graph));
    let stale = Arc::new(AllPairs::compute_all_live(graph));
    engine::run_units(
        family.len(),
        threads.max(1),
        // One Dijkstra arena per worker: each unit's IGP tables are
        // incrementally repaired from the hoisted stale trees.
        SpScratch::new,
        |scratch, i| run_one(graph, &agent, &stale, family, config, base_seed, i, scratch),
    )
}

/// The serial reference: the plain scenario loop. [`run`] must be
/// bit-identical to this at every thread count.
pub fn run_serial(
    graph: &Graph,
    net: &PrNetwork,
    family: &dyn TemporalFamily,
    config: &SimConfig,
    base_seed: u64,
) -> Vec<TemporalRow> {
    let agent = Static(net.agent(graph));
    let stale = Arc::new(AllPairs::compute_all_live(graph));
    let mut scratch = SpScratch::new();
    (0..family.len())
        .map(|i| run_one(graph, &agent, &stale, family, config, base_seed, i, &mut scratch))
        .collect()
}

/// One work unit: replay scenario `i` under PR and under the
/// reconverging IGP (tables repaired from the stale trees through the
/// worker's arena), with the per-scenario derived seed.
#[allow(clippy::too_many_arguments)]
fn run_one(
    graph: &Graph,
    agent: &Static<pr_core::PrAgent<'_>>,
    stale: &Arc<AllPairs>,
    family: &dyn TemporalFamily,
    config: &SimConfig,
    base_seed: u64,
    i: usize,
    scratch: &mut SpScratch,
) -> TemporalRow {
    let scenario = family.scenario(i);
    let seed = family.seed_for(base_seed, i);
    let pr = run_scenario(graph, agent, &scenario, config, seed);
    let igp_agent = igp_for_with(graph, &scenario, stale, scratch);
    let igp = run_scenario(graph, &igp_agent, &scenario, config, seed);
    TemporalRow { scenario: i, label: scenario.label, pr, igp }
}

/// Aggregate of a temporal sweep for reports: totals across scenarios.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TemporalSummary {
    /// Scenarios swept.
    pub scenarios: usize,
    /// Total packets injected (identical for both schemes: CBR).
    pub injected: u64,
    /// PR deliveries / drops.
    pub pr_delivered: u64,
    /// PR drops, all causes.
    pub pr_dropped: u64,
    /// IGP deliveries.
    pub igp_delivered: u64,
    /// IGP drops, all causes.
    pub igp_dropped: u64,
}

/// Sums a sweep's rows.
pub fn summarize(rows: &[TemporalRow]) -> TemporalSummary {
    let mut s = TemporalSummary { scenarios: rows.len(), ..Default::default() };
    for r in rows {
        s.injected += r.pr.injected;
        s.pr_delivered += r.pr.delivered;
        s.pr_dropped += r.pr.total_dropped();
        s.igp_delivered += r.igp.delivered;
        s.igp_dropped += r.igp.total_dropped();
    }
    s
}

/// Renders a sweep as CSV: one row per scenario, both schemes.
pub fn rows_csv(rows: &[TemporalRow]) -> String {
    let mut out =
        String::from("scenario,label,injected,pr_delivered,pr_dropped,igp_delivered,igp_dropped\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.scenario,
            r.label,
            r.pr.injected,
            r.pr.delivered,
            r.pr.total_dropped(),
            r.igp.delivered,
            r.igp.total_dropped(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_core::{DiscriminatorKind, PrMode};
    use pr_embedding::{CellularEmbedding, RotationSystem};
    use pr_graph::generators;
    use pr_scenarios::{OutageParams, OutageSweep};

    fn ring_net(n: usize) -> (Graph, PrNetwork) {
        let g = generators::ring(n, 1);
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        (g, net)
    }

    #[test]
    fn outage_sweep_shows_pr_beating_reconvergence_on_every_link() {
        let (g, net) = ring_net(5);
        let fam = OutageSweep::new(&g, OutageParams::default());
        let rows = run(&g, &net, &fam, &SimConfig::default(), 2010, 2);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.pr.injected, r.igp.injected, "same CBR schedule");
            assert!(r.pr.delivered > r.igp.delivered, "scenario {}: PR must win", r.label);
            // PR's loss is bounded by the 1 ms detection window.
            assert!(r.pr.delivery_ratio() > 0.99, "{}: {:?}", r.label, r.pr);
        }
        let s = summarize(&rows);
        assert_eq!(s.scenarios, 5);
        assert_eq!(s.injected, rows.iter().map(|r| r.pr.injected).sum::<u64>());
        assert!(s.pr_dropped < s.igp_dropped / 10);
        let csv = rows_csv(&rows);
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("scenario,label,"));
    }

    #[test]
    fn parallel_matches_serial_smoke() {
        let (g, net) = ring_net(4);
        let fam = OutageSweep::new(&g, OutageParams::default());
        let config = SimConfig::default();
        let reference = run_serial(&g, &net, &fam, &config, 7);
        for threads in [1, 2, 4] {
            assert_eq!(run(&g, &net, &fam, &config, 7, threads), reference, "{threads} threads");
        }
    }
}
