//! Coverage experiment (E5): which schemes deliver, under how many
//! concurrent failures — quantifying §4.2/§4.3's claims and RFC 5286's
//! partial protection.
//!
//! The sweep itself routes through [`crate::engine`]: one work unit
//! per (scenario, destination), per-worker walk scratches and FCP
//! route caches, and a deterministic merge that makes the output
//! bit-identical to [`run_serial`] at any thread count (enforced by
//! `tests/determinism.rs`).

use serde::Serialize;

use pr_baselines::{FcpAgent, LfaAgent, NotViaAgent};
use pr_core::{
    generous_ttl, walk_packet, walk_packet_spliced, DiscriminatorKind, PrMode, PrNetwork,
    SuffixMemo, WalkResult, WalkScratch,
};
use pr_embedding::CellularEmbedding;
use pr_graph::{AllPairs, Graph, SpScratch, SpTree};
use pr_scenarios::{SampledMultiFailures, ScenarioFamily, ScenarioIter, SingleLinkFailures};

use crate::engine::ScenarioSweep;

/// Delivery statistics for one scheme at one failure count.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CoverageCell {
    /// Affected-and-connected (scenario, pair) combinations evaluated.
    pub evaluated: u64,
    /// Of those, how many the scheme delivered.
    pub delivered: u64,
}

impl CoverageCell {
    /// Delivered fraction (1.0 when nothing was evaluated).
    pub fn ratio(&self) -> f64 {
        if self.evaluated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.evaluated as f64
        }
    }

    fn absorb(&mut self, (evaluated, delivered): (u64, u64)) {
        self.evaluated += evaluated;
        self.delivered += delivered;
    }
}

/// One row of the coverage table: failure count → per-scheme cells.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoverageRow {
    /// Number of concurrent link failures in the scenarios of this row.
    pub failures: usize,
    /// PR basic mode (§4.2, single header bit).
    pub pr_basic: CoverageCell,
    /// PR distance-discriminator mode (§4.3).
    pub pr_dd: CoverageCell,
    /// Failure-Carrying Packets.
    pub fcp: CoverageCell,
    /// Loop-Free Alternates.
    pub lfa: CoverageCell,
    /// Not-via addresses (tunnelled single-failure repair).
    pub notvia: CoverageCell,
}

impl CoverageRow {
    fn empty(failures: usize) -> CoverageRow {
        CoverageRow {
            failures,
            pr_basic: CoverageCell::default(),
            pr_dd: CoverageCell::default(),
            fcp: CoverageCell::default(),
            lfa: CoverageCell::default(),
            notvia: CoverageCell::default(),
        }
    }
}

/// The five schemes' compiled, failure-invariant state, hoisted out of
/// every loop level.
struct Compiled {
    basic_net: PrNetwork,
    dd_net: PrNetwork,
    lfa: LfaAgent,
    notvia: NotViaAgent,
    ttl: usize,
}

impl Compiled {
    fn new(graph: &Graph, embedding: &CellularEmbedding) -> Compiled {
        Compiled {
            basic_net: PrNetwork::compile(
                graph,
                embedding.clone(),
                PrMode::Basic,
                DiscriminatorKind::Hops,
            ),
            dd_net: PrNetwork::compile(
                graph,
                embedding.clone(),
                PrMode::DistanceDiscriminator,
                DiscriminatorKind::Hops,
            ),
            lfa: LfaAgent::compute(graph),
            notvia: NotViaAgent::compute(graph),
            ttl: generous_ttl(graph),
        }
    }
}

/// Per-(scenario, destination) partial result: `(evaluated, delivered)`
/// per scheme, in [`CoverageRow`] field order.
type UnitCells = [(u64, u64); 5];

/// Per-worker mutable state: the FCP route cache, one walk scratch per
/// header-state type, and the Dijkstra arena + reusable live tree for
/// the per-unit incremental SPT repair — all reused across every walk
/// the worker runs.
struct WorkerState<'a> {
    fcp: FcpAgent<'a>,
    pr_scratch: WalkScratch<pr_core::PrHeader>,
    fcp_scratch: WalkScratch<pr_baselines::FcpState>,
    unit_scratch: WalkScratch<()>,
    notvia_scratch: WalkScratch<pr_baselines::NotViaState>,
    // One delivered-suffix memo per scheme, evicted at unit
    // boundaries. Basic and DD share a scratch (same header type) but
    // must not share a memo: their trajectories differ.
    basic_memo: SuffixMemo<pr_core::PrHeader>,
    dd_memo: SuffixMemo<pr_core::PrHeader>,
    fcp_memo: SuffixMemo<pr_baselines::FcpState>,
    lfa_memo: SuffixMemo<()>,
    notvia_memo: SuffixMemo<pr_baselines::NotViaState>,
    sp_scratch: SpScratch,
    live: SpTree,
}

/// Runs coverage for failure counts `1..=max_failures`, with
/// `samples_per_count` sampled scenarios each (failure count 1 runs
/// exhaustively instead), fanned out over `threads` workers.
pub fn run(
    graph: &Graph,
    embedding: &CellularEmbedding,
    max_failures: usize,
    samples_per_count: usize,
    seed: u64,
    threads: usize,
) -> Vec<CoverageRow> {
    let compiled = Compiled::new(graph, embedding);
    let base = AllPairs::compute_all_live(graph);
    let basic_agent = compiled.basic_net.agent(graph);
    let dd_agent = compiled.dd_net.agent(graph);

    let mut rows = Vec::new();
    for k in 1..=max_failures {
        let scenarios = scenarios_for(graph, k, samples_per_count, seed);
        let sweep = ScenarioSweep::new(graph, scenarios.as_ref(), &base, threads);
        let parts: Vec<UnitCells> = sweep.run_with(
            || WorkerState {
                fcp: FcpAgent::cached_with_base(graph, sweep.base()),
                pr_scratch: WalkScratch::new(),
                fcp_scratch: WalkScratch::new(),
                unit_scratch: WalkScratch::new(),
                notvia_scratch: WalkScratch::new(),
                basic_memo: SuffixMemo::new(),
                dd_memo: SuffixMemo::new(),
                fcp_memo: SuffixMemo::new(),
                lfa_memo: SuffixMemo::new(),
                notvia_memo: SuffixMemo::new(),
                sp_scratch: SpScratch::new(),
                live: SpTree::placeholder(),
            },
            // Scenario boundary: the FCP memo's keys are subsets of the
            // departing scenario — evict instead of growing the map
            // across the sweep.
            |w, _| w.fcp.begin_scenario(),
            |w, unit| {
                w.live.repair_refresh(unit.base_tree, graph, unit.failed, &mut w.sp_scratch);
                let live_tree = &w.live;
                w.basic_memo.begin_unit();
                w.dd_memo.begin_unit();
                w.fcp_memo.begin_unit();
                w.lfa_memo.begin_unit();
                w.notvia_memo.begin_unit();
                let mut cells: UnitCells = Default::default();
                for src in graph.nodes() {
                    if src == unit.dst {
                        continue;
                    }
                    if !unit.base_tree.path_crosses(graph, src, unit.failed) {
                        continue;
                    }
                    if !live_tree.reaches(src) {
                        continue; // "| path" conditioning
                    }
                    let ttl = compiled.ttl;
                    let failed = unit.failed;
                    let dst = unit.dst;
                    let walks = [
                        walk_packet_spliced(
                            graph,
                            &basic_agent,
                            src,
                            dst,
                            failed,
                            ttl,
                            &mut w.pr_scratch,
                            &mut w.basic_memo,
                        )
                        .result,
                        walk_packet_spliced(
                            graph,
                            &dd_agent,
                            src,
                            dst,
                            failed,
                            ttl,
                            &mut w.pr_scratch,
                            &mut w.dd_memo,
                        )
                        .result,
                        walk_packet_spliced(
                            graph,
                            &w.fcp,
                            src,
                            dst,
                            failed,
                            ttl,
                            &mut w.fcp_scratch,
                            &mut w.fcp_memo,
                        )
                        .result,
                        walk_packet_spliced(
                            graph,
                            &compiled.lfa,
                            src,
                            dst,
                            failed,
                            ttl,
                            &mut w.unit_scratch,
                            &mut w.lfa_memo,
                        )
                        .result,
                        walk_packet_spliced(
                            graph,
                            &compiled.notvia,
                            src,
                            dst,
                            failed,
                            ttl,
                            &mut w.notvia_scratch,
                            &mut w.notvia_memo,
                        )
                        .result,
                    ];
                    for (cell, delivered) in cells.iter_mut().zip(walks) {
                        cell.0 += 1;
                        if matches!(delivered, WalkResult::Delivered) {
                            cell.1 += 1;
                        }
                    }
                }
                cells
            },
        );

        let mut row = CoverageRow::empty(k);
        for part in parts {
            row.pr_basic.absorb(part[0]);
            row.pr_dd.absorb(part[1]);
            row.fcp.absorb(part[2]);
            row.lfa.absorb(part[3]);
            row.notvia.absorb(part[4]);
        }
        rows.push(row);
    }
    rows
}

/// The serial reference implementation: the plain nested loop the seed
/// harness ran (with the base-tree recompute hoisted out of the
/// scenario loop — it never depended on the scenario) and the honest
/// recompute-per-decision FCP agent. `run` must produce bit-identical
/// rows at every thread count; benchmarks measure `run` against this.
pub fn run_serial(
    graph: &Graph,
    embedding: &CellularEmbedding,
    max_failures: usize,
    samples_per_count: usize,
    seed: u64,
) -> Vec<CoverageRow> {
    let compiled = Compiled::new(graph, embedding);
    let base = AllPairs::compute_all_live(graph);
    let basic_agent = compiled.basic_net.agent(graph);
    let dd_agent = compiled.dd_net.agent(graph);
    let fcp = FcpAgent::new(graph);
    let ttl = compiled.ttl;

    let mut rows = Vec::new();
    for k in 1..=max_failures {
        let scenarios = scenarios_for(graph, k, samples_per_count, seed);
        let mut row = CoverageRow::empty(k);
        for failed in ScenarioIter::new(scenarios.as_ref()) {
            let failed = &failed;
            for dst in graph.nodes() {
                let base_tree = base.towards(dst);
                let live_tree = SpTree::towards(graph, dst, failed);
                for src in graph.nodes() {
                    if src == dst {
                        continue;
                    }
                    let base_path = base_tree.path_darts(graph, src).expect("connected base graph");
                    if !base_path.iter().any(|d| failed.contains_dart(*d)) {
                        continue;
                    }
                    if !live_tree.reaches(src) {
                        continue; // "| path" conditioning
                    }
                    for (cell, delivered) in [
                        (
                            &mut row.pr_basic,
                            walk_packet(graph, &basic_agent, src, dst, failed, ttl).result,
                        ),
                        (
                            &mut row.pr_dd,
                            walk_packet(graph, &dd_agent, src, dst, failed, ttl).result,
                        ),
                        (&mut row.fcp, walk_packet(graph, &fcp, src, dst, failed, ttl).result),
                        (
                            &mut row.lfa,
                            walk_packet(graph, &compiled.lfa, src, dst, failed, ttl).result,
                        ),
                        (
                            &mut row.notvia,
                            walk_packet(graph, &compiled.notvia, src, dst, failed, ttl).result,
                        ),
                    ] {
                        cell.evaluated += 1;
                        if matches!(delivered, WalkResult::Delivered) {
                            cell.delivered += 1;
                        }
                    }
                }
            }
        }
        rows.push(row);
    }
    rows
}

/// Scenario family for one failure count: exhaustive singles
/// (streaming), sampled multis (shared by the engine and serial paths
/// so they sweep the identical space).
fn scenarios_for(
    graph: &Graph,
    k: usize,
    samples_per_count: usize,
    seed: u64,
) -> Box<dyn ScenarioFamily + '_> {
    if k == 1 {
        Box::new(SingleLinkFailures::new(graph))
    } else {
        let fam = SampledMultiFailures::new(graph, k, samples_per_count, seed + k as u64);
        // A shortfall would aggregate smaller failure sets into the
        // row labelled `failures = k` — the silent skew this harness
        // refuses to report.
        assert_eq!(
            fam.incomplete_draws(),
            0,
            "graph cannot lose {k} links; lower the failure count"
        );
        Box::new(fam)
    }
}

/// Renders the coverage table as aligned text.
pub fn render(rows: &[CoverageRow]) -> String {
    let mut out = String::from(
        "failures  pr-basic   pr-dd      fcp        lfa        not-via    (delivered / affected connected pairs)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>8.4}   {:>8.4}   {:>8.4}   {:>8.4}   {:>8.4}\n",
            r.failures,
            r.pr_basic.ratio(),
            r.pr_dd.ratio(),
            r.fcp.ratio(),
            r.lfa.ratio(),
            r.notvia.ratio(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_coverage_matches_paper_claims() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let rot = pr_embedding::heuristics::thorough(&g, 2010, 4, 10_000);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        assert_eq!(emb.genus(), 0);
        let rows = run(&g, &emb, 3, 10, 7, 2);

        // Single failures: both PR modes and FCP at 100%; LFA partial.
        let r1 = &rows[0];
        assert_eq!(r1.pr_basic.ratio(), 1.0, "PR basic covers all single failures");
        assert_eq!(r1.pr_dd.ratio(), 1.0);
        assert_eq!(r1.fcp.ratio(), 1.0);
        assert!(r1.lfa.ratio() < 1.0, "LFA cannot protect everything on Abilene");
        assert_eq!(r1.notvia.ratio(), 1.0, "not-via covers all single failures on 2EC graphs");

        // Multi-failures: PR-DD and FCP stay at 100% (genus 0), basic
        // mode may livelock, LFA degrades further.
        for r in &rows[1..] {
            assert_eq!(r.pr_dd.ratio(), 1.0, "k={}", r.failures);
            assert_eq!(r.fcp.ratio(), 1.0, "k={}", r.failures);
            assert!(r.pr_basic.ratio() <= 1.0);
            assert!(r.lfa.ratio() < 1.0);
        }
        let text = render(&rows);
        assert!(text.contains("failures"));
        assert_eq!(text.lines().count(), rows.len() + 1);
    }

    #[test]
    fn coverage_cell_ratio_empty_is_one() {
        assert_eq!(CoverageCell::default().ratio(), 1.0);
    }
}
