//! Coverage experiment (E5): which schemes deliver, under how many
//! concurrent failures — quantifying §4.2/§4.3's claims and RFC 5286's
//! partial protection.

use serde::Serialize;

use pr_baselines::{FcpAgent, LfaAgent, NotViaAgent};
use pr_core::{generous_ttl, walk_packet, DiscriminatorKind, PrMode, PrNetwork, WalkResult};
use pr_embedding::CellularEmbedding;
use pr_graph::{Graph, SpTree};

/// Delivery statistics for one scheme at one failure count.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CoverageCell {
    /// Affected-and-connected (scenario, pair) combinations evaluated.
    pub evaluated: u64,
    /// Of those, how many the scheme delivered.
    pub delivered: u64,
}

impl CoverageCell {
    /// Delivered fraction (1.0 when nothing was evaluated).
    pub fn ratio(&self) -> f64 {
        if self.evaluated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.evaluated as f64
        }
    }
}

/// One row of the coverage table: failure count → per-scheme cells.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageRow {
    /// Number of concurrent link failures in the scenarios of this row.
    pub failures: usize,
    /// PR basic mode (§4.2, single header bit).
    pub pr_basic: CoverageCell,
    /// PR distance-discriminator mode (§4.3).
    pub pr_dd: CoverageCell,
    /// Failure-Carrying Packets.
    pub fcp: CoverageCell,
    /// Loop-Free Alternates.
    pub lfa: CoverageCell,
    /// Not-via addresses (tunnelled single-failure repair).
    pub notvia: CoverageCell,
}

/// Runs coverage for failure counts `1..=max_failures`, with
/// `samples_per_count` sampled scenarios each (failure count 1 runs
/// exhaustively instead).
pub fn run(
    graph: &Graph,
    embedding: &CellularEmbedding,
    max_failures: usize,
    samples_per_count: usize,
    seed: u64,
) -> Vec<CoverageRow> {
    let pr_basic =
        PrNetwork::compile(graph, embedding.clone(), PrMode::Basic, DiscriminatorKind::Hops);
    let pr_dd = PrNetwork::compile(
        graph,
        embedding.clone(),
        PrMode::DistanceDiscriminator,
        DiscriminatorKind::Hops,
    );
    let fcp = FcpAgent::new(graph);
    let lfa = LfaAgent::compute(graph);
    let notvia = NotViaAgent::compute(graph);
    let ttl = generous_ttl(graph);
    let basic_agent = pr_basic.agent(graph);
    let dd_agent = pr_dd.agent(graph);

    let mut rows = Vec::new();
    for k in 1..=max_failures {
        let scenarios = if k == 1 {
            crate::scenario::all_single_failures(graph)
        } else {
            crate::scenario::sampled_multi_failures(graph, k, samples_per_count, seed + k as u64)
        };
        let mut row = CoverageRow {
            failures: k,
            pr_basic: CoverageCell::default(),
            pr_dd: CoverageCell::default(),
            fcp: CoverageCell::default(),
            lfa: CoverageCell::default(),
            notvia: CoverageCell::default(),
        };
        for failed in &scenarios {
            for dst in graph.nodes() {
                let base_tree = SpTree::towards_all_live(graph, dst);
                let live_tree = SpTree::towards(graph, dst, failed);
                for src in graph.nodes() {
                    if src == dst {
                        continue;
                    }
                    let base_path = base_tree.path_darts(graph, src).expect("connected base graph");
                    if !base_path.iter().any(|d| failed.contains_dart(*d)) {
                        continue;
                    }
                    if !live_tree.reaches(src) {
                        continue; // "| path" conditioning
                    }
                    for (cell, delivered) in [
                        (
                            &mut row.pr_basic,
                            walk_packet(graph, &basic_agent, src, dst, failed, ttl).result,
                        ),
                        (
                            &mut row.pr_dd,
                            walk_packet(graph, &dd_agent, src, dst, failed, ttl).result,
                        ),
                        (&mut row.fcp, walk_packet(graph, &fcp, src, dst, failed, ttl).result),
                        (&mut row.lfa, walk_packet(graph, &lfa, src, dst, failed, ttl).result),
                        (
                            &mut row.notvia,
                            walk_packet(graph, &notvia, src, dst, failed, ttl).result,
                        ),
                    ] {
                        cell.evaluated += 1;
                        if matches!(delivered, WalkResult::Delivered) {
                            cell.delivered += 1;
                        }
                    }
                }
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders the coverage table as aligned text.
pub fn render(rows: &[CoverageRow]) -> String {
    let mut out = String::from(
        "failures  pr-basic   pr-dd      fcp        lfa        not-via    (delivered / affected connected pairs)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>8.4}   {:>8.4}   {:>8.4}   {:>8.4}   {:>8.4}\n",
            r.failures,
            r.pr_basic.ratio(),
            r.pr_dd.ratio(),
            r.fcp.ratio(),
            r.lfa.ratio(),
            r.notvia.ratio(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_coverage_matches_paper_claims() {
        let g =
            pr_topologies::load(pr_topologies::Isp::Abilene, pr_topologies::Weighting::Distance);
        let rot = pr_embedding::heuristics::thorough(&g, 2010, 4, 10_000);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        assert_eq!(emb.genus(), 0);
        let rows = run(&g, &emb, 3, 10, 7);

        // Single failures: both PR modes and FCP at 100%; LFA partial.
        let r1 = &rows[0];
        assert_eq!(r1.pr_basic.ratio(), 1.0, "PR basic covers all single failures");
        assert_eq!(r1.pr_dd.ratio(), 1.0);
        assert_eq!(r1.fcp.ratio(), 1.0);
        assert!(r1.lfa.ratio() < 1.0, "LFA cannot protect everything on Abilene");
        assert_eq!(r1.notvia.ratio(), 1.0, "not-via covers all single failures on 2EC graphs");

        // Multi-failures: PR-DD and FCP stay at 100% (genus 0), basic
        // mode may livelock, LFA degrades further.
        for r in &rows[1..] {
            assert_eq!(r.pr_dd.ratio(), 1.0, "k={}", r.failures);
            assert_eq!(r.fcp.ratio(), 1.0, "k={}", r.failures);
            assert!(r.pr_basic.ratio() <= 1.0);
            assert!(r.lfa.ratio() < 1.0);
        }
        let text = render(&rows);
        assert!(text.contains("failures"));
        assert_eq!(text.lines().count(), rows.len() + 1);
    }

    #[test]
    fn coverage_cell_ratio_empty_is_one() {
        assert_eq!(CoverageCell::default().ratio(), 1.0);
    }
}
