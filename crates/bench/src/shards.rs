//! Checkpointable sweep sharding.
//!
//! An ISP-scale sweep (1,000 nodes × every single-link failure) runs
//! for minutes; a killed run that restarts from scratch wastes all of
//! it. This module splits a [`ScenarioFamily`](pr_scenarios::ScenarioFamily)
//! index range into contiguous shards, runs each shard as an ordinary
//! engine sweep (full thread parallelism *inside* the shard), and
//! persists each finished shard as `results/<sweep>/shard-NNN.json`
//! next to a `manifest.json` recording the sweep identity and the
//! completed shard set. A resumed run re-reads the manifest, skips the
//! finished shards, and merges everything in index order — so the
//! merged output is bit-identical to an uninterrupted run at any
//! thread or shard count.
//!
//! ## Manifest format
//!
//! `manifest.json` holds a [`ShardManifest`]: the [`ShardKey`]
//! identity (topology fingerprint + node/link counts, family label,
//! seed, scenario total, shard count) and the sorted list of completed
//! shard indices. A resume against a manifest whose key differs —
//! different topology bytes, family parameters, seed or shard plan —
//! is a hard error rather than a silently mixed result. Each shard
//! file holds a [`ShardPayload`]: its index range plus one
//! [`ScenarioRow`] per scenario (O(1) size per scenario — integer
//! CCDF counts, sums and maxima — so checkpoints stay kilobytes at any
//! scale).
//!
//! Both files are written via temp-file-then-rename, so a kill mid
//! write leaves either the previous state or the new one, never a
//! torn file. The manifest is rewritten *after* its shard file lands,
//! so a crash between the two at worst forgets one finished shard.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::stretch::ScenarioRow;

/// Identity of a sharded sweep: everything that must match for a
/// checkpoint to be resumable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardKey {
    /// [`pr_graph::Graph::fingerprint`] of the swept topology.
    pub topology: u64,
    /// Node count (redundant with the fingerprint; kept for humans).
    pub nodes: u64,
    /// Link count (ditto).
    pub links: u64,
    /// Scenario-family label, including its parameters.
    pub family: String,
    /// Experiment seed the sweep ran under.
    pub seed: u64,
    /// Total number of scenarios in the family.
    pub scenarios: u64,
    /// Number of shards the scenario range is split into.
    pub shards: u64,
}

/// `manifest.json`: the sweep identity plus the completed shard set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Sweep identity; must match exactly for a resume.
    pub key: ShardKey,
    /// Completed shard indices, sorted ascending.
    pub completed: Vec<u64>,
}

/// One `shard-NNN.json` checkpoint: the shard's scenario range and its
/// per-scenario rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPayload {
    /// Shard index.
    pub shard: u64,
    /// First scenario index covered.
    pub start: u64,
    /// Number of scenarios covered.
    pub len: u64,
    /// One row per scenario, in scenario order.
    pub rows: Vec<ScenarioRow>,
}

/// What [`run_shards`] left behind.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOutcome {
    /// Every shard is done; the merged rows, in scenario order.
    Complete(Vec<ScenarioRow>),
    /// Stopped early (`stop_after`); rerun with resume to continue.
    Partial {
        /// Shards finished so far (including previously checkpointed
        /// ones).
        completed: usize,
        /// Total shards in the plan.
        total: usize,
    },
}

/// Splits `scenarios` indices into `shards` contiguous near-equal
/// ranges `(start, len)`; the first `scenarios % shards` ranges get
/// one extra scenario.
pub fn shard_ranges(scenarios: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let (base, rem) = (scenarios / shards, scenarios % shards);
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Path of shard `i`'s checkpoint file under `dir`.
pub fn shard_file(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.json"))
}

fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Write-then-rename so a kill mid-write never leaves a torn file.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

/// Removes any previous checkpoint state under `dir` (manifest, shard
/// files, stray temp files) so a fresh run cannot mix with stale
/// shards.
fn clear_checkpoint(dir: &Path) -> Result<(), String> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // nothing to clear
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = name == "manifest.json"
            || name == "manifest.tmp"
            || (name.starts_with("shard-") && (name.ends_with(".json") || name.ends_with(".tmp")));
        if stale {
            fs::remove_file(entry.path())
                .map_err(|e| format!("remove stale {}: {e}", entry.path().display()))?;
        }
    }
    Ok(())
}

/// Runs a sharded, checkpointable sweep under `dir`.
///
/// `run_slice(shard, start, len)` sweeps scenarios `[start, start+len)`
/// and returns one [`ScenarioRow`] per scenario (see
/// `stretch::run_rows` with a
/// [`ScenarioSlice`](pr_scenarios::ScenarioSlice)); it is called
/// sequentially per shard, with the engine's thread parallelism inside.
///
/// * `resume = false`: any existing checkpoint under `dir` is cleared
///   and every shard runs.
/// * `resume = true`: a matching manifest's completed shards are
///   skipped; a manifest for a *different* sweep (topology, family,
///   seed or shard plan changed) is a hard error.
/// * `stop_after = Some(k)`: stop after `k` newly computed shards (the
///   checkpoint stays resumable) — this is the kill-injection hook the
///   resume tests and the CI smoke use.
///
/// Completion merges every shard file in index order; the merge
/// re-reads even freshly written shards, so clean and resumed runs
/// traverse the identical serialise/parse path and their merged rows
/// are byte-identical.
pub fn run_shards(
    dir: &Path,
    key: &ShardKey,
    resume: bool,
    stop_after: Option<usize>,
    mut run_slice: impl FnMut(usize, usize, usize) -> Vec<ScenarioRow>,
) -> Result<ShardOutcome, String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let manifest_path = manifest_file(dir);

    let mut done: BTreeSet<u64> = BTreeSet::new();
    if !resume {
        clear_checkpoint(dir)?;
    } else if manifest_path.exists() {
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
        let manifest: ShardManifest = serde_json::from_str(&text).map_err(|e| {
            format!(
                "corrupt checkpoint manifest {} ({e}); delete the directory to start fresh",
                manifest_path.display()
            )
        })?;
        if manifest.key != *key {
            return Err(format!(
                "checkpoint at {} belongs to a different sweep (recorded: topology {:#018x}, \
                 family {:?}, seed {}, {} scenarios / {} shards; requested: topology {:#018x}, \
                 family {:?}, seed {}, {} scenarios / {} shards) — rerun without --resume to \
                 start fresh",
                dir.display(),
                manifest.key.topology,
                manifest.key.family,
                manifest.key.seed,
                manifest.key.scenarios,
                manifest.key.shards,
                key.topology,
                key.family,
                key.seed,
                key.scenarios,
                key.shards,
            ));
        }
        done.extend(manifest.completed.iter().copied().filter(|&s| s < key.shards));
    }

    let ranges = shard_ranges(key.scenarios as usize, key.shards as usize);
    let mut fresh = 0usize;
    for (i, &(start, len)) in ranges.iter().enumerate() {
        if done.contains(&(i as u64)) {
            if shard_file(dir, i).exists() {
                continue; // checkpointed; validated at merge time
            }
            done.remove(&(i as u64)); // manifest ahead of a lost file
        }
        if stop_after.is_some_and(|cap| fresh >= cap) {
            break;
        }
        let rows = run_slice(i, start, len);
        if rows.len() != len {
            return Err(format!("shard {i} produced {} rows for {len} scenarios", rows.len()));
        }
        let payload = ShardPayload { shard: i as u64, start: start as u64, len: len as u64, rows };
        let text = serde_json::to_string_pretty(&payload)
            .map_err(|e| format!("serialise shard {i}: {e}"))?;
        write_atomic(&shard_file(dir, i), &text)?;
        done.insert(i as u64);
        let manifest =
            ShardManifest { key: key.clone(), completed: done.iter().copied().collect() };
        let text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| format!("serialise manifest: {e}"))?;
        write_atomic(&manifest_path, &text)?;
        fresh += 1;
    }

    if done.len() < ranges.len() {
        return Ok(ShardOutcome::Partial { completed: done.len(), total: ranges.len() });
    }

    // Merge in index order, validating every payload against the plan.
    let mut rows = Vec::with_capacity(key.scenarios as usize);
    for (i, &(start, len)) in ranges.iter().enumerate() {
        let path = shard_file(dir, i);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let payload: ShardPayload = serde_json::from_str(&text).map_err(|e| {
            format!("corrupt shard file {} ({e}); delete it and rerun with resume", path.display())
        })?;
        if payload.shard != i as u64
            || payload.start != start as u64
            || payload.len != len as u64
            || payload.rows.len() != len
            || payload.rows.iter().enumerate().any(|(j, r)| r.scenario != (start + j) as u64)
        {
            return Err(format!(
                "shard file {} does not match the shard plan (expected shard {i} covering \
                 [{start}, {})); delete it and rerun with resume",
                path.display(),
                start + len
            ));
        }
        rows.extend(payload.rows);
    }
    Ok(ShardOutcome::Complete(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_contiguously() {
        for (scenarios, shards) in [(10, 3), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let ranges = shard_ranges(scenarios, shards);
            assert_eq!(ranges.len(), shards);
            let mut next = 0;
            for &(start, len) in &ranges {
                assert_eq!(start, next, "{scenarios}/{shards}");
                next += len;
            }
            assert_eq!(next, scenarios, "{scenarios}/{shards}");
            let lens: Vec<usize> = ranges.iter().map(|&(_, l)| l).collect();
            let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(hi - lo <= 1, "near-equal split: {lens:?}");
        }
        assert_eq!(shard_ranges(5, 0), vec![(0, 5)], "zero shards clamps to one");
    }

    #[test]
    fn manifest_round_trips() {
        let manifest = ShardManifest {
            key: ShardKey {
                topology: 0xDEAD_BEEF,
                nodes: 11,
                links: 14,
                family: "single-link".into(),
                seed: 2010,
                scenarios: 14,
                shards: 4,
            },
            completed: vec![0, 2],
        };
        let text = serde_json::to_string_pretty(&manifest).unwrap();
        let back: ShardManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, manifest);
    }
}
