//! # pr-bench — the experiment harness
//!
//! Regenerates every table and figure of the Packet Re-cycling paper
//! (and the ablations this reproduction adds). The mapping from paper
//! artefact to binary lives in `DESIGN.md` §4; in short:
//!
//! | artefact | binary |
//! |---|---|
//! | Table 1 | `table1` |
//! | Figure 1(b)/(c) walkthroughs | `fig1` |
//! | Figure 2(a)–(f) stretch CCDFs | `fig2` |
//! | §4.2/§4.3 coverage claims (E5) | `coverage` |
//! | §6 header/memory overheads (E8) | `overheads` |
//! | §1 OC-192 loss arithmetic (E10) | `oc192_loss` |
//! | impaired loss-over-time (E13) | `impair_loss` |
//! | embedding-heuristic ablation (E6) | `ablation_embedding` |
//! | discriminator ablation (E7) | `ablation_dd` |
//! | genus-vs-delivery finding (E11) | `ablation_genus` |
//!
//! Criterion micro-benchmarks (experiment E9: forwarding decision
//! latency, table compilation, embedding search, FCP recompute cost)
//! live under `benches/`, plus the end-to-end sweep benchmarks that
//! back `BENCH_*.json`.
//!
//! Every scenario sweep routes through [`engine`] — the shared
//! work-unit decomposition, hoisting and worker-pool layer. Binaries
//! accept `--threads N` (default: all cores; see
//! [`engine::threads_from_args`]).
//!
//! All binaries print a human-readable summary to stdout and write
//! machine-readable CSV/JSON under `results/` (created on demand).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod coverage;
pub mod engine;
pub mod impair;
pub mod overheads;
pub mod scenario;
pub mod shards;
pub mod stretch;
pub mod temporal;
pub mod traffic;

use std::path::{Path, PathBuf};

use pr_embedding::CellularEmbedding;
use pr_graph::Graph;
use pr_topologies::{Isp, Weighting};

/// Seed used by every experiment binary, so published numbers are
/// reproducible byte for byte.
pub const EXPERIMENT_SEED: u64 = 2010; // HotNets year

/// Loads a paper topology with distance weights and its certified
/// genus-0 embedding (the production pipeline).
pub fn paper_topology(isp: Isp) -> (Graph, CellularEmbedding) {
    paper_topology_with(isp, Weighting::Distance)
}

/// [`paper_topology`] with an explicit weighting. The stretch figures
/// are run under both: hop weights reproduce the paper's 1–15 stretch
/// axis; distance weights show the geographically-weighted variant.
pub fn paper_topology_with(isp: Isp, weighting: Weighting) -> (Graph, CellularEmbedding) {
    let graph = pr_topologies::load(isp, weighting);
    let rot = pr_embedding::heuristics::thorough(&graph, EXPERIMENT_SEED, 8, 60_000);
    let emb = CellularEmbedding::new(&graph, rot).expect("ISP topologies are connected");
    (graph, emb)
}

/// Resolves (and creates) the `results/` output directory next to the
/// workspace root.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a result artefact and echoes its path.
pub fn write_result(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topologies_get_planar_embeddings() {
        let (g, emb) = paper_topology(Isp::Abilene);
        assert_eq!(g.node_count(), 11);
        assert_eq!(emb.genus(), 0);
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.is_dir());
    }
}
