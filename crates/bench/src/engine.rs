//! The parallel scenario-sweep engine.
//!
//! Every quantitative experiment in this harness is the same shape: a
//! huge loop over (failure scenario × destination × source) triples,
//! walking packets under several schemes. This module factors that
//! shape out once, so every experiment gets the same three
//! optimisations:
//!
//! * **Failure-invariant hoisting** — the failure-free shortest-path
//!   trees ([`AllPairs`]), compiled agents and the TTL do not depend on
//!   the scenario, so the engine computes them once per sweep instead
//!   of once per scenario (the seed harness rebuilt
//!   `SpTree::towards_all_live` inside the scenario loop).
//! * **Work-unit parallelism** — the sweep decomposes into independent
//!   `(scenario, destination)` units, fanned out over a hand-rolled
//!   [`std::thread::scope`] worker pool: a chunked work queue over an
//!   [`AtomicUsize`] cursor (the container has no crates.io access, so
//!   no rayon). Each worker owns private scratch state (walk scratches,
//!   FCP route caches) created by a caller-supplied factory.
//! * **Deterministic merge** — every unit result is tagged with its
//!   unit index and merged in index order, so the output is
//!   bit-identical to the serial scenario-major/destination-minor loop
//!   regardless of thread count. `tests/determinism.rs` enforces this.
//!
//! Thread counts come from `--threads N` on the experiment binaries
//! (see [`threads_from_args`]), the `PR_THREADS` environment variable,
//! or default to the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

use pr_graph::{AllPairs, Graph, LinkSet, NodeId, SpTree};
use pr_scenarios::ScenarioFamily;

pub use crate::shards::run_shards;

/// Largest number of work units a worker claims per queue
/// interaction. Units are coarse (a destination's whole source fan
/// under one scenario), so a small cap keeps the tail balanced while
/// the atomic traffic stays negligible.
const MAX_CHUNK: usize = 4;

/// Chunk size for a queue of `count` units over `workers` workers:
/// capped so small inputs (e.g. three topologies over eight workers)
/// still spread one unit per worker instead of letting the first
/// fetch-add swallow the whole queue.
fn chunk_size(count: usize, workers: usize) -> usize {
    (count / (workers * 4)).clamp(1, MAX_CHUNK)
}

/// The machine's parallelism, overridable via `PR_THREADS`. A
/// malformed `PR_THREADS` is reported on stderr (and ignored) rather
/// than silently changing the thread count a benchmark was meant to
/// run at.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PR_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => eprintln!(
                "warning: ignoring invalid PR_THREADS={v:?} (expected a positive integer)"
            ),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parses `--threads N` from an argument stream (`--threads=N` also
/// accepted). `Ok(None)` when absent; `Err` on a missing or
/// non-numeric value — callers must not guess a thread count the user
/// visibly tried to pin.
pub fn parse_threads(args: impl IntoIterator<Item = String>) -> Result<Option<usize>, String> {
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--threads" {
            Some(iter.next().ok_or("option --threads needs a value".to_string())?)
        } else {
            arg.strip_prefix("--threads=").map(str::to_string)
        };
        if let Some(v) = value {
            return match v.trim().parse::<usize>() {
                Ok(n) => Ok(Some(n.max(1))),
                Err(_) => {
                    Err(format!("bad value {v:?} for --threads: expected a positive integer"))
                }
            };
        }
    }
    Ok(None)
}

/// Thread count for an experiment binary: `--threads` from the process
/// arguments, else [`default_threads`]. Exits with usage status 2 on a
/// malformed `--threads` (benchmark numbers recorded at a silently
/// wrong thread count are worse than no numbers).
pub fn threads_from_args() -> usize {
    match parse_threads(std::env::args().skip(1)) {
        Ok(Some(n)) => n,
        Ok(None) => default_threads(),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Runs `f` over every item of `items` on `threads` workers, returning
/// the results in item order (bit-identical to a serial `map`).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed(items.len(), threads, &|| (), &|(), idx| f(idx, &items[idx]))
}

/// The generic work-unit entry point: runs `work` over unit indices
/// `0..count` on `threads` workers, each owning private state built by
/// `init`, with results merged back in unit order (bit-identical to
/// the serial loop `(0..count).map(...)` at any thread count).
///
/// [`ScenarioSweep`] specialises this to `(scenario × destination)`
/// link-sweep units; temporal sweeps use it directly with one unit per
/// timed scenario; any future experiment shape plugs in the same way.
pub fn run_units<W, R, I, F>(count: usize, threads: usize, init: I, work: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> R + Sync,
{
    run_indexed(count, threads, &init, &|w, idx| work(w, idx))
}

/// One unit of sweep work: every source towards `dst` under scenario
/// `scenario`, with the hoisted failure-free tree already in hand.
#[derive(Debug, Clone, Copy)]
pub struct SweepUnit<'a> {
    /// Index of the scenario in the sweep's scenario family.
    pub scenario: usize,
    /// The scenario's failed links.
    pub failed: &'a LinkSet,
    /// The destination this unit covers.
    pub dst: NodeId,
    /// Failure-free shortest-path tree towards `dst` (hoisted: shared
    /// by every scenario).
    pub base_tree: &'a SpTree,
}

/// A sweep over (scenario × destination) work units, **streaming** its
/// scenarios from a [`ScenarioFamily`]: scenario `s` is constructed on
/// the worker that claims its units (and cached while that worker
/// stays on `s` — the chunked queue hands out contiguous unit ranges,
/// so a scenario is typically built once per worker, not once per
/// unit). No `Vec<LinkSet>` ever exists, which is what lets exhaustive
/// k≥3 spaces and large generated topologies sweep at O(workers)
/// scenario memory.
///
/// Construction hoists nothing by itself — the caller supplies the
/// [`AllPairs`] base trees so sweeps sharing a topology can also share
/// the hoisted state (e.g. coverage's per-failure-count rounds).
#[derive(Clone, Copy)]
pub struct ScenarioSweep<'a> {
    graph: &'a Graph,
    family: &'a dyn ScenarioFamily,
    base: &'a AllPairs,
    threads: usize,
}

impl<'a> ScenarioSweep<'a> {
    /// A sweep of `family`'s scenarios on `graph` using `threads`
    /// workers. An explicit `Vec<LinkSet>` works too (it implements
    /// [`ScenarioFamily`]).
    pub fn new(
        graph: &'a Graph,
        family: &'a dyn ScenarioFamily,
        base: &'a AllPairs,
        threads: usize,
    ) -> ScenarioSweep<'a> {
        ScenarioSweep { graph, family, base, threads: threads.max(1) }
    }

    /// The topology under sweep.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The scenario family under sweep.
    pub fn family(&self) -> &'a dyn ScenarioFamily {
        self.family
    }

    /// The hoisted failure-free trees.
    pub fn base(&self) -> &'a AllPairs {
        self.base
    }

    /// Worker count this sweep fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total number of (scenario × destination) work units.
    pub fn unit_count(&self) -> usize {
        self.family.len() * self.graph.node_count()
    }

    /// Executes the sweep. `init` builds one worker-local state (walk
    /// scratches, cached agents, …) per worker thread; `work` maps one
    /// unit to its partial result. Results come back in unit order —
    /// scenario-major, destination-minor — exactly as the serial
    /// nested loop would produce them.
    pub fn run<W, R, I, F>(&self, init: I, work: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, SweepUnit<'_>) -> R + Sync,
    {
        self.run_with(init, |_, _| (), work)
    }

    /// [`ScenarioSweep::run`] with a scenario-boundary hook: the engine
    /// already tracks when a worker's claimed unit crosses into a new
    /// scenario (to rebuild its cached [`LinkSet`]), so `on_scenario`
    /// fires exactly there — once per (worker, scenario) visit, before
    /// any of that scenario's units run on the worker. This is where
    /// per-scenario worker state gets evicted (e.g. the FCP route
    /// memo, whose live keys are subsets of the current scenario — see
    /// `FcpAgent::begin_scenario` in pr-baselines).
    pub fn run_with<W, R, I, B, F>(&self, init: I, on_scenario: B, work: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> W + Sync,
        B: Fn(&mut W, usize) + Sync,
        F: Fn(&mut W, SweepUnit<'_>) -> R + Sync,
    {
        let n = self.graph.node_count();
        // Worker state = caller state + the worker's current scenario
        // (rebuilt only when the claimed unit crosses a scenario
        // boundary).
        let worker_init = || (init(), usize::MAX, LinkSet::empty(self.family.link_capacity()));
        run_indexed(self.unit_count(), self.threads, &worker_init, &|state, idx| {
            let (w, cached_scenario, failed) = state;
            let (scenario, dst) = (idx / n, NodeId((idx % n) as u32));
            if *cached_scenario != scenario {
                *failed = self.family.scenario(scenario);
                *cached_scenario = scenario;
                on_scenario(w, scenario);
            }
            work(w, SweepUnit { scenario, failed, dst, base_tree: self.base.towards(dst) })
        })
    }
}

/// The shared work-queue core: `count` indices, `threads` workers with
/// private `init()` state, results merged back in index order.
fn run_indexed<W, R>(
    count: usize,
    threads: usize,
    init: &(dyn Fn() -> W + Sync),
    work: &(dyn Fn(&mut W, usize) -> R + Sync),
) -> Vec<R>
where
    R: Send,
{
    let workers = threads.max(1).min(count.max(1));
    if workers <= 1 {
        let mut w = init();
        return (0..count).map(|idx| work(&mut w, idx)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(count, workers);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = init();
                    let mut out = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= count {
                            break;
                        }
                        for idx in start..(start + chunk).min(count) {
                            out.push((idx, work(&mut local, idx)));
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            tagged.extend(handle.join().expect("sweep worker panicked"));
        }
    });

    // Deterministic merge: unit order, independent of which worker ran
    // what. Indices are distinct by construction, so the sort is total.
    tagged.sort_unstable_by_key(|&(idx, _)| idx);
    debug_assert!(tagged.iter().enumerate().all(|(pos, &(idx, _))| pos == idx));
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_graph::generators;

    #[test]
    fn parallel_map_is_order_preserving_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, threads, |_, &x| x * x), expected, "{threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn sweep_enumerates_units_in_scenario_major_order() {
        let g = generators::ring(5, 1);
        let base = AllPairs::compute_all_live(&g);
        let scenarios: Vec<LinkSet> =
            g.links().map(|l| LinkSet::from_links(g.link_count(), [l])).collect();
        let expected: Vec<(usize, u32)> = (0..scenarios.len())
            .flat_map(|s| (0..g.node_count() as u32).map(move |d| (s, d)))
            .collect();
        for threads in [1, 2, 4] {
            let sweep = ScenarioSweep::new(&g, &scenarios, &base, threads);
            assert_eq!(sweep.unit_count(), expected.len());
            let got = sweep.run(|| (), |_, u| (u.scenario, u.dst.0));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn sweep_units_carry_the_hoisted_base_tree() {
        let g = generators::ring(6, 1);
        let base = AllPairs::compute_all_live(&g);
        let scenarios = vec![LinkSet::empty(g.link_count())];
        let sweep = ScenarioSweep::new(&g, &scenarios, &base, 2);
        let costs = sweep.run(|| (), |_, u| u.base_tree.cost(NodeId(0)));
        for (dst, cost) in costs.into_iter().enumerate() {
            assert_eq!(cost, base.towards(NodeId(dst as u32)).cost(NodeId(0)));
        }
    }

    #[test]
    fn worker_local_state_is_threaded_through() {
        // Each worker counts the units it ran; the counts must sum to
        // the unit total even though workers race on the queue.
        let items: Vec<u32> = (0..57).collect();
        let results = parallel_map(&items, 3, |idx, _| idx);
        assert_eq!(results.len(), 57);
        let g = generators::ring(4, 1);
        let base = AllPairs::compute_all_live(&g);
        let scenarios = vec![LinkSet::empty(g.link_count()); 9];
        let sweep = ScenarioSweep::new(&g, &scenarios, &base, 3);
        let per_unit: Vec<usize> = sweep.run(
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        // Every worker's local counter starts at 1 and never exceeds
        // the unit total.
        assert!(per_unit.iter().all(|&c| c >= 1 && c <= sweep.unit_count()));
    }

    #[test]
    fn scenario_hook_fires_once_per_worker_scenario_visit() {
        let g = generators::ring(4, 1);
        let base = AllPairs::compute_all_live(&g);
        let scenarios = vec![LinkSet::empty(g.link_count()); 6];
        // Serial worker: contiguous units, so the hook must fire
        // exactly once per scenario, before that scenario's units.
        let sweep = ScenarioSweep::new(&g, &scenarios, &base, 1);
        let log = sweep.run_with(
            Vec::new,
            |seen: &mut Vec<usize>, s| seen.push(s),
            |seen, u| (seen.clone(), u.scenario),
        );
        for (boundaries, scenario) in &log {
            // Every unit has already seen its own scenario's boundary…
            assert_eq!(boundaries.last(), Some(scenario));
            // …and boundaries arrive in order, without repeats.
            assert_eq!(*boundaries, (0..=*scenario).collect::<Vec<_>>());
        }
        // Parallel workers: each worker sees a boundary before any unit
        // of a scenario it claims; unit order is still deterministic.
        for threads in [2, 4] {
            let sweep = ScenarioSweep::new(&g, &scenarios, &base, threads);
            let got = sweep.run_with(
                || None,
                |current: &mut Option<usize>, s| *current = Some(s),
                |current, u| (*current, u.scenario),
            );
            assert_eq!(got.len(), sweep.unit_count());
            for (seen, scenario) in got {
                assert_eq!(seen, Some(scenario), "{threads} threads");
            }
        }
    }

    #[test]
    fn chunk_size_spreads_small_queues_across_workers() {
        // Three heavy items over many workers must not be swallowed by
        // the first fetch-add.
        assert_eq!(chunk_size(3, 8), 1);
        assert_eq!(chunk_size(1, 2), 1);
        // Large queues amortise queue traffic up to the cap.
        assert_eq!(chunk_size(10_000, 8), MAX_CHUNK);
    }

    #[test]
    fn parse_threads_accepts_both_spellings_and_rejects_garbage() {
        fn args(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }
        assert_eq!(parse_threads(args("--threads 3")), Ok(Some(3)));
        assert_eq!(parse_threads(args("--seed 1 --threads=5")), Ok(Some(5)));
        assert_eq!(parse_threads(args("--threads 0")), Ok(Some(1)), "clamped to 1");
        assert_eq!(parse_threads(args("--seed 1")), Ok(None));
        // A user who visibly tried to pin the count must get an error,
        // not a silent all-cores fallback.
        assert!(parse_threads(args("--threads banana")).is_err());
        assert!(parse_threads(args("--threads=1x")).is_err());
        assert!(parse_threads(args("--threads")).is_err(), "missing value");
        assert!(default_threads() >= 1);
    }
}
