//! Regenerates **Table 1** of the paper: the cycle following table at
//! node D of the Figure 1(a) example network, in the paper's
//! `I_XY (c)` notation — plus, as a bonus, the tables of every other
//! node and the full cycle system.

use pr_core::{CycleFollowingTable, DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::{CellularEmbedding, RotationSystem};

fn main() {
    let (graph, orders) = pr_topologies::figure1();
    let rot =
        RotationSystem::from_neighbor_orders(&graph, &orders).expect("figure-1 orders are valid");
    let emb = CellularEmbedding::new(&graph, rot).expect("figure-1 graph is connected");

    println!("=== The cellular cycle system of Figure 1(a) ===");
    println!("genus {}, {} faces:", emb.genus(), emb.faces().face_count());
    for (f, _) in emb.faces().iter() {
        println!("  {}", emb.faces().display_face(&graph, f));
    }

    let table = CycleFollowingTable::compile(&graph, &emb);
    println!("\n=== Table 1 (paper): cycle following table at node D ===\n");
    let d = graph.node_by_name("D").expect("node D exists");
    print!("{}", table.display_at(&graph, &emb, d));

    println!("\n=== All other nodes (not shown in the paper) ===\n");
    for node in graph.nodes() {
        if node == d {
            continue;
        }
        println!("{}", table.display_at(&graph, &emb, node));
    }

    // Also show the §4.3 routing-table DD column for destination F.
    let net =
        PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let f = graph.node_by_name("F").expect("node F exists");
    println!("=== Distance discriminator column towards F (hops) ===");
    for node in graph.nodes() {
        println!("  dd({}) = {}", graph.node_name(node), net.dd(node, f));
    }
    println!(
        "\nheader: PR bit + {} DD bits = {} bits (fits DSCP pool 2: {})",
        net.codec().dd_bits(),
        net.codec().total_bits(),
        net.codec().fits_in_dscp_pool2()
    );
}
