//! Experiment **E6**: embedding heuristic vs genus, face structure and
//! stretch (the trade-off §7 of the paper gestures at: worse
//! embeddings still work — on the sphere — but cost stretch).

use pr_bench::{ablation, engine, write_result, EXPERIMENT_SEED};
use pr_topologies::{Isp, Weighting};

fn main() {
    let threads = engine::threads_from_args();
    println!("=== E6: embedding heuristic ablation (single-failure PR-DD stretch) ===");
    println!("    ({threads} worker threads)\n");
    let mut all = Vec::new();
    for isp in Isp::ALL {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        println!("{isp}:");
        println!(
            "  heuristic             genus  faces  max-face  mean-stretch  max-stretch  delivery"
        );
        let rows = ablation::embedding_ablation(&graph, EXPERIMENT_SEED, threads);
        for r in &rows {
            println!(
                "  {:<21} {:>5}  {:>5}  {:>8}  {:>12.3}  {:>11.3}  {:>8.4}",
                r.heuristic,
                r.genus,
                r.faces,
                r.max_face,
                r.mean_stretch,
                r.max_stretch,
                r.delivery
            );
        }
        all.push((isp.name(), rows));
        println!();
    }
    let json = serde_json::to_string_pretty(&all).expect("serializable");
    write_result("ablation_embedding.json", &json);
}
