//! Experiment **E10**: the paper's §1 motivating arithmetic. "If a
//! heavily loaded OC-192 link is down for a second, more than a
//! quarter of a million packets could be lost, given an average packet
//! size of 1 kB." — versus what PR loses in the same outage.

use pr_sim::scenarios::{run_oc192, Oc192Scenario};
use pr_sim::SimTime;

fn main() {
    println!("=== E10: 1 s OC-192 outage, 1 kB packets (paper §1) ===\n");
    for load in [0.25, 0.5, 1.0] {
        let scenario = Oc192Scenario {
            load,
            igp_convergence: SimTime::from_secs(1),
            ..Oc192Scenario::default()
        };
        println!(
            "offered load {:.0}% of OC-192 ({:.2} Mpps):",
            load * 100.0,
            load * 9_953_280_000.0 / (1024.0 * 8.0) / 1e6
        );
        let mut rows = String::from("scheme,load,injected,delivered,lost,delivery_ratio\n");
        for result in run_oc192(&scenario, pr_bench::EXPERIMENT_SEED) {
            let m = &result.metrics;
            println!(
                "  {:<14} injected {:>9}  delivered {:>9}  lost {:>8}  ({:.4} delivered)",
                result.scheme,
                m.injected,
                m.delivered,
                m.total_dropped(),
                m.delivery_ratio()
            );
            for (reason, count) in &m.drops {
                println!("      {count:>9} x {reason}");
            }
            rows.push_str(&format!(
                "{},{},{},{},{},{:.6}\n",
                result.scheme,
                load,
                m.injected,
                m.delivered,
                m.total_dropped(),
                m.delivery_ratio()
            ));
        }
        pr_bench::write_result(&format!("oc192_load{}.csv", (load * 100.0) as u32), &rows);
        println!();
    }
    println!(
        "Paper check: at ≥25% load the reconverging IGP loses >250k packets in the 1 s\n\
         blackhole — \"more than a quarter of a million\" — while PR loses only the\n\
         ~1 ms detection window."
    );
}
