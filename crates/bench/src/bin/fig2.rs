//! Regenerates **Figure 2** of the paper: stretch CCDFs
//! `P(stretch > x | path)` for Reconvergence, FCP and Packet
//! Re-cycling on Abilene, Teleglobe and GÉANT — panels (a)–(c) with
//! exhaustive single failures, panels (d)–(f) with the paper's
//! multi-failure counts (Abilene×4, Teleglobe×10, GÉANT×16), sampled
//! over non-disconnecting failure sets.
//!
//! The headline run uses hop-count link costs, which reproduces the
//! paper's 1–15 stretch axis; a second run uses great-circle distance
//! weights (the geographically realistic variant — same ordering,
//! heavier tails because short optimal paths can incur continental
//! detours).
//!
//! Output: `results/fig2_<topology>_<single|multi>[_distance].csv`
//! plus a summary table on stdout.

use pr_bench::{engine, paper_topology_with, stretch, write_result, EXPERIMENT_SEED};
use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_scenarios::{SampledMultiFailures, ScenarioFamily, SingleLinkFailures};
use pr_topologies::{Isp, Weighting};

/// Sampled multi-failure scenarios per panel (the paper does not state
/// its count; 200 gives smooth CCDFs at this topology size).
const MULTI_SAMPLES: usize = 200;

fn main() {
    let threads = engine::threads_from_args();
    println!("=== Figure 2: stretch CCDF, P(stretch > x | path) ===");
    println!("    ({threads} worker threads)");
    let xs = stretch::figure2_xs();

    for (weighting, suffix) in [(Weighting::Hop, ""), (Weighting::Distance, "_distance")] {
        println!(
            "\n--- link costs: {} ---\n",
            match weighting {
                Weighting::Hop => "hops (paper's 1-15 axis)",
                Weighting::Distance => "great-circle distance (geographic variant)",
            }
        );
        for isp in Isp::ALL {
            let (graph, embedding) = paper_topology_with(isp, weighting);
            println!(
                "{}: {} nodes, {} links, embedding genus {}",
                isp,
                graph.node_count(),
                graph.link_count(),
                embedding.genus()
            );
            let pr = PrNetwork::compile(
                &graph,
                embedding,
                PrMode::DistanceDiscriminator,
                DiscriminatorKind::Hops,
            );

            // Panels (a)-(c): exhaustive single failures (streamed).
            let single = SingleLinkFailures::new(&graph);
            let s_single = stretch::run(&graph, &pr, &single, threads);
            write_result(
                &format!("fig2_{isp}_single{suffix}.csv"),
                &stretch::panel_csv(&s_single, &xs),
            );
            print_panel("single", &s_single);

            // Panels (d)-(f): k concurrent failures, sampled
            // (deduplicated — duplicate scenarios used to double-count
            // in the CCDF).
            let k = isp.paper_multi_failure_count();
            let multi = SampledMultiFailures::new(&graph, k, MULTI_SAMPLES, EXPERIMENT_SEED);
            // The paper's k values all fit inside each topology's
            // cycle space, so every draw must reach k — a shortfall
            // here would silently mix failure counts into the panel.
            assert!(
                multi.all_draws_complete(),
                "{isp}: some sampled scenarios fell short of k={k}"
            );
            assert_eq!(multi.len(), MULTI_SAMPLES, "{isp}: dedup backfill fell short");
            let s_multi = stretch::run(&graph, &pr, &multi, threads);
            write_result(
                &format!("fig2_{isp}_multi{suffix}.csv"),
                &stretch::panel_csv(&s_multi, &xs),
            );
            print_panel(&format!("multi(k={k})"), &s_multi);
            println!();
        }
    }
    println!("Done. CSV columns: stretch, P(>x) per scheme, legend order as in the paper.");
}

fn print_panel(kind: &str, samples: &stretch::StretchSamples) {
    let summary = stretch::summarize(samples);
    println!(
        "  [{kind}] pairs evaluated: {}, disconnected (excluded): {}, undelivered: {}",
        samples.evaluated_pairs, samples.disconnected_pairs, samples.undelivered
    );
    println!("    scheme            median   p95      max      P(stretch>1)");
    for (i, scheme) in stretch::Scheme::ALL.iter().enumerate() {
        println!(
            "    {:<17} {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}",
            scheme.label(),
            summary.median[i],
            summary.p95[i],
            summary.max[i],
            summary.p_above_one[i],
        );
    }
}
