//! Experiment **E5**: repair coverage per scheme and failure count on
//! each paper topology — quantifying §4.2 ("full repair coverage for
//! any single link failure"), §4.3 ("any number of link failures ...
//! as long as the network remains connected"), and LFA's partial
//! protection for contrast.

use pr_bench::{coverage, engine, paper_topology, write_result, EXPERIMENT_SEED};
use pr_topologies::Isp;

fn main() {
    let threads = engine::threads_from_args();
    println!("=== E5: delivery coverage, P(delivered | affected pair still connected) ===");
    println!("    ({threads} worker threads)\n");
    for isp in Isp::ALL {
        let (graph, embedding) = paper_topology(isp);
        let max_failures = isp.paper_multi_failure_count();
        let rows = coverage::run(&graph, &embedding, max_failures, 50, EXPERIMENT_SEED, threads);
        println!(
            "{isp} ({} nodes / {} links, genus {}):",
            graph.node_count(),
            graph.link_count(),
            embedding.genus()
        );
        print!("{}", coverage::render(&rows));
        println!();
        let json = serde_json::to_string_pretty(&rows).expect("serializable rows");
        write_result(&format!("coverage_{isp}.json"), &json);
        println!();
    }
}
