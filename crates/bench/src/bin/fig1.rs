//! Replays the **Figure 1(b)** and **Figure 1(c)** walkthroughs of
//! §4.2/§4.3 and prints the packet's route hop by hop, with the PR/DD
//! header state at each step.

use pr_core::{
    generous_ttl, DiscriminatorKind, ForwardDecision, ForwardingAgent, PrHeader, PrMode, PrNetwork,
    WalkScratch,
};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::{Graph, LinkSet, NodeId};

fn main() {
    let (graph, orders) = pr_topologies::figure1();
    let rot = RotationSystem::from_neighbor_orders(&graph, &orders).expect("figure-1 orders");
    let emb = CellularEmbedding::new(&graph, rot).expect("connected");
    let net =
        PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);

    let n = |s: &str| graph.node_by_name(s).unwrap();
    let de = graph.find_link(n("D"), n("E")).unwrap();
    let ab = graph.find_link(n("A"), n("B")).unwrap();
    let bc = graph.find_link(n("B"), n("C")).unwrap();

    println!("=== Figure 1(b): single failure D-E, packet A -> F ===");
    trace(&graph, &net, n("A"), n("F"), LinkSet::from_links(graph.link_count(), [de]));

    println!("\n=== §4.2 second example: failures A-B and D-E, packet A -> F ===");
    trace(&graph, &net, n("A"), n("F"), LinkSet::from_links(graph.link_count(), [de, ab]));

    println!("\n=== Figure 1(c): failures D-E and B-C, packet A -> F (DD mode) ===");
    trace(&graph, &net, n("A"), n("F"), LinkSet::from_links(graph.link_count(), [de, bc]));

    println!("\n=== Figure 1(c) under basic mode: the forwarding loop §4.3 fixes ===");
    let basic = PrNetwork::compile(
        &graph,
        CellularEmbedding::new(
            &graph,
            RotationSystem::from_neighbor_orders(&graph, &orders).unwrap(),
        )
        .unwrap(),
        PrMode::Basic,
        DiscriminatorKind::Hops,
    );
    trace(&graph, &basic, n("A"), n("F"), LinkSet::from_links(graph.link_count(), [de, bc]));
}

/// Steps a single packet manually so the header state can be printed
/// at every hop.
fn trace(graph: &Graph, net: &PrNetwork, src: NodeId, dst: NodeId, failed: LinkSet) {
    let agent = net.agent(graph);
    let ttl = generous_ttl(graph);
    let mut state = PrHeader::default();
    let mut at = src;
    let mut ingress = None;
    let mut hops = 0usize;
    // The walker's own livelock detector, driven manually so the
    // header state can be printed hop by hop.
    let mut seen: WalkScratch<PrHeader> = WalkScratch::new();
    println!(
        "  failed links: {}",
        failed
            .iter()
            .map(|l| {
                let (a, b) = graph.endpoints(l);
                format!("{}-{}", graph.node_name(a), graph.node_name(b))
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    loop {
        if at == dst {
            println!("  DELIVERED at {} after {hops} hops", graph.node_name(at));
            return;
        }
        if hops >= ttl || !seen.record(at, ingress, &state) {
            println!("  FORWARDING LOOP detected at {} (header {:?})", graph.node_name(at), state);
            return;
        }
        match agent.decide(at, ingress, dst, &mut state, &failed) {
            ForwardDecision::Forward(d) => {
                println!(
                    "  {} -> {}   [PR={} DD={}]",
                    graph.node_name(at),
                    graph.node_name(graph.dart_head(d)),
                    u8::from(state.pr),
                    state.dd
                );
                at = graph.dart_head(d);
                ingress = Some(d);
                hops += 1;
            }
            ForwardDecision::Drop(reason) => {
                println!("  DROPPED at {}: {}", graph.node_name(at), reason);
                return;
            }
        }
    }
}
