//! Experiment **E13**: demand-weighted loss-over-time under stochastic
//! impairment. Wraps each paper topology's outage sweep in a
//! Gilbert–Elliott fault process and a correlated flap-storm layer,
//! replays gravity demand through every impaired timeline, and writes
//! the loss-over-time curves plus a summary table under `results/`.

use pr_bench::{engine, impair, paper_topology, write_result, EXPERIMENT_SEED};
use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_scenarios::{Impaired, ImpairmentProcess, OutageParams, OutageSweep, TemporalFamily};
use pr_topologies::Isp;
use pr_traffic::{FlowSet, GravityTraffic};

fn main() {
    let threads = engine::threads_from_args();
    println!("=== E13: stochastic impairment, gravity demand ({threads} threads) ===\n");
    let mut table = String::from(
        "topology,process,scenarios,events,offered_demand_s,pr_lost_demand_s,\
         igp_lost_demand_s,pr_loss_over_time,igp_loss_over_time,peak_pr_loss_fraction\n",
    );
    for isp in [Isp::Abilene, Isp::Geant] {
        let (g, emb) = paper_topology(isp);
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
        let slug = format!("{isp:?}").to_lowercase();
        let processes: Vec<(&str, Box<dyn TemporalFamily>)> = vec![
            (
                "gilbert",
                Box::new(Impaired::new(
                    &g,
                    OutageSweep::new(&g, OutageParams::default()),
                    ImpairmentProcess::GilbertElliott {
                        fail_rate_per_s: 2.0,
                        mean_down_ns: 20_000_000,
                    },
                    EXPERIMENT_SEED,
                )),
            ),
            (
                "storm",
                Box::new(Impaired::new(
                    &g,
                    OutageSweep::new(&g, OutageParams::default()),
                    ImpairmentProcess::FlapStorm {
                        storms: 1,
                        radius_km: 500.0,
                        down_for_ns: 50_000_000,
                    },
                    EXPERIMENT_SEED,
                )),
            ),
        ];
        for (tag, family) in &processes {
            let rows = impair::run(&g, &net, family.as_ref(), &flows, threads);
            let s = impair::summarize(&rows);
            println!(
                "{slug}/{tag}: {} scenarios, {} events, PR loses {:.6} demand-s vs IGP {:.6} \
                 (loss-over-time {:.6} vs {:.6})",
                s.scenarios,
                s.events,
                s.pr_demand_seconds_lost,
                s.igp_demand_seconds_lost,
                s.pr_loss_over_time(),
                s.igp_loss_over_time(),
            );
            write_result(&format!("impair_{slug}_{tag}.csv"), &impair::rows_csv(&rows));
            table.push_str(&format!(
                "{slug},{tag},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                s.scenarios,
                s.events,
                s.offered_demand_seconds,
                s.pr_demand_seconds_lost,
                s.igp_demand_seconds_lost,
                s.pr_loss_over_time(),
                s.igp_loss_over_time(),
                s.peak_pr_loss_fraction,
            ));
        }
        println!();
    }
    write_result("impair_summary.csv", &table);
    println!(
        "Reading: PR's loss-over-time stays pinned to the detection window even when a\n\
         Gilbert–Elliott process or a geo-correlated storm multiplies the failure count;\n\
         the reconverging IGP pays the full convergence transient on every episode."
    );
}
