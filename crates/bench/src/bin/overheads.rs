//! Experiment **E8**: the §6 overhead comparison, measured on the real
//! header codecs and table structures.

use pr_bench::{engine, overheads, write_result};
use pr_topologies::Isp;

fn main() {
    let threads = engine::threads_from_args();
    println!("=== E8: header & state overheads (measured, not estimated) ===");
    println!("    ({threads} worker threads)\n");
    let reports = overheads::reports_for(&Isp::ALL, threads);
    print!("{}", overheads::render(&reports));
    println!(
        "\nReading guide: PR's header is constant (1 bit basic; 1+ceil(log2(diameter)) bits in\n\
         DD mode) while FCP grows linearly with carried failures; reconvergence and LFA use\n\
         no header bits but pay in loss-during-convergence and partial coverage respectively\n\
         (see E5/E10). pr-mem is the worst router's added state: DD column + 3-column cycle\n\
         following table."
    );
    let json = serde_json::to_string_pretty(&reports).expect("serializable reports");
    write_result("overheads.json", &json);
}
