//! Experiment **E7**: hop-count vs weighted-cost distance
//! discriminator (§4.3 allows either). Both deliver identically on
//! genus-0 embeddings; the difference is header bits.

use pr_bench::{ablation, engine, paper_topology, write_result, EXPERIMENT_SEED};
use pr_topologies::Isp;

fn main() {
    let threads = engine::threads_from_args();
    println!("=== E7: distance-discriminator function ablation ===");
    println!("    ({threads} worker threads)\n");
    let mut all = Vec::new();
    for isp in Isp::ALL {
        let (graph, embedding) = paper_topology(isp);
        let k = isp.paper_multi_failure_count();
        let rows =
            ablation::discriminator_ablation(&graph, &embedding, k, 50, EXPERIMENT_SEED, threads);
        println!("{isp} (k={k} failures, 50 scenarios):");
        println!("  discriminator   header-bits  delivery  mean-stretch");
        for r in &rows {
            println!(
                "  {:<15} {:>11}  {:>8.4}  {:>12.3}",
                r.discriminator, r.header_bits, r.delivery, r.mean_stretch
            );
        }
        all.push((isp.name(), rows));
        println!();
    }
    let json = serde_json::to_string_pretty(&all).expect("serializable");
    write_result("ablation_dd.json", &json);
}
