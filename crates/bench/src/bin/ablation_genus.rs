//! Experiment **E11** (reproduction finding): PR-DD delivery rate as a
//! function of embedding genus. The paper's §5 guarantee is proved
//! with sphere reasoning; this experiment shows it degrading as random
//! rotation systems push the surface genus up — including on K5, where
//! *no* genus-0 embedding exists.

use pr_bench::{ablation, engine, write_result, EXPERIMENT_SEED};
use pr_graph::generators;
use pr_topologies::{Isp, Weighting};

fn main() {
    let threads = engine::threads_from_args();
    println!("=== E11: delivery vs embedding genus (random rotation systems) ===");
    println!("    ({threads} worker threads)\n");
    let mut all = Vec::new();

    let mut run = |name: &str, graph: &pr_graph::Graph, failures: usize| {
        println!(
            "{name} ({} nodes / {} links, {failures} failures per scenario):",
            graph.node_count(),
            graph.link_count()
        );
        println!("  genus  embeddings  evaluated  delivered  rate");
        let rows = ablation::genus_delivery(graph, 60, failures, 5, EXPERIMENT_SEED, threads);
        for r in &rows {
            println!(
                "  {:>5}  {:>10}  {:>9}  {:>9}  {:.4}",
                r.genus,
                r.embeddings,
                r.evaluated,
                r.delivered,
                if r.evaluated == 0 { 1.0 } else { r.delivered as f64 / r.evaluated as f64 }
            );
        }
        all.push((name.to_string(), rows));
        println!();
    };

    run("k5", &generators::complete(5, 1), 3);
    run("petersen", &generators::petersen(1), 3);
    run("abilene", &pr_topologies::load(Isp::Abilene, Weighting::Distance), 4);

    let json = serde_json::to_string_pretty(&all).expect("serializable");
    write_result("ablation_genus.json", &json);
    println!(
        "Reading guide: at genus 0 delivery is 1.0 (the paper's theorem); positive-genus\n\
         embeddings livelock on a measurable fraction of (scenario, pair) combinations.\n\
         All three paper topologies admit genus-0 embeddings, so the paper's results hold."
    );
}
