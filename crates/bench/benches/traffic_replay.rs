//! Throughput micro-benchmark for the flow-replay dataplanes, plus
//! the flows/s regression gate.
//!
//! Three rungs per topology, slowest to fastest:
//!
//! * `naive` — one `walk_packet` per flow, fresh scratch, per-
//!   destination from-scratch survivor trees.
//! * `batched` — PR 5's per-flow FIB fast path with reused scratch
//!   and incremental SPT repair.
//! * `bitparallel` — PR 6's destination-major dataplane: u64
//!   affected-set classification over the staged dense FIB, bottom-up
//!   subtree demand aggregation for clear flows, per-flow fallback
//!   only for affected-but-connected sources.
//!
//! All three produce the identical `ScenarioTraffic` (asserted by the
//! pr-traffic tests, proptests and the determinism suite); only the
//! time per replayed flow differs. BENCH_pr6.json records the medians
//! and derived flows/sec.
//!
//! **The gate** (runs even under `--test`, so CI's bench smoke step
//! enforces it): on the GÉANT single-failure sweep the bit-parallel
//! dataplane must clear ≥ 2x the batched dataplane measured in the
//! same process, and must never fall below PR 5's recorded batched
//! median (19.0M flows/s) — a hard floor against absolute
//! regressions.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_core::{generous_ttl, DenseFib, DiscriminatorKind, Fib, PrMode, PrNetwork};
use pr_graph::AllPairs;
use pr_scenarios::{ScenarioFamily, SingleLinkFailures};
use pr_topologies::{Isp, Weighting};
use pr_traffic::{
    replay_scenario, replay_scenario_bitparallel, replay_scenario_naive, FlowSet, GravityTraffic,
    ReplayScratch,
};

/// PR 5's recorded GÉANT batched median (BENCH_pr5.json): the hard
/// flows/s floor for the bit-parallel dataplane.
const PR5_BATCHED_FLOWS_PER_SEC: f64 = 19.0e6;

struct Setup {
    graph: pr_graph::Graph,
    net: PrNetwork,
    base: AllPairs,
    fib: Fib,
    dense: DenseFib,
    flows: FlowSet,
    singles: SingleLinkFailures,
    ttl: usize,
}

fn setup(isp: Isp) -> Setup {
    let graph = pr_topologies::load(isp, Weighting::Distance);
    let rot = pr_embedding::heuristics::thorough(&graph, 2010, 4, 20_000);
    let emb = pr_embedding::CellularEmbedding::new(&graph, rot).expect("connected");
    let net =
        PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let base = AllPairs::compute_all_live(&graph);
    let fib = Fib::from_base(&graph, &base);
    let dense = DenseFib::from_base(&graph, &base);
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&graph));
    let singles = SingleLinkFailures::new(&graph);
    let ttl = generous_ttl(&graph);
    Setup { graph, net, base, fib, dense, flows, singles, ttl }
}

/// One full single-failure sweep through the bit-parallel dataplane.
fn sweep_bitparallel(
    s: &Setup,
    agent: &pr_core::PrAgent<'_>,
    scratch: &mut ReplayScratch<pr_core::PrHeader>,
) {
    for i in 0..s.singles.len() {
        let failed = s.singles.scenario(i);
        black_box(replay_scenario_bitparallel(
            &s.graph, agent, &s.dense, &s.base, &s.flows, &failed, s.ttl, scratch,
        ));
    }
}

/// One full single-failure sweep through the batched dataplane.
fn sweep_batched(
    s: &Setup,
    agent: &pr_core::PrAgent<'_>,
    scratch: &mut ReplayScratch<pr_core::PrHeader>,
) {
    for i in 0..s.singles.len() {
        let failed = s.singles.scenario(i);
        black_box(replay_scenario(
            &s.graph, agent, &s.fib, &s.base, &s.flows, &failed, s.ttl, scratch,
        ));
    }
}

/// The flows/s regression gate on GÉANT. Panics (failing the bench
/// run, `--test` smoke mode included) when the bit-parallel dataplane
/// loses its 2x margin over batched or drops below PR 5's recorded
/// absolute median.
///
/// Measurement discipline: the two sweeps are timed **interleaved**
/// (batched, bit-parallel, batched, …) and each takes its best
/// (minimum) round. Shared-machine throttling then hits both sides of
/// the ratio alike instead of whichever happened to run second, and
/// the minimum over 20 rounds is a stable point estimate where a
/// best-of-3 sequential measurement flaked.
fn flows_per_sec_gate() {
    let s = setup(Isp::Geant);
    let agent = s.net.agent(&s.graph);
    let flows_per_sweep = (s.flows.len() * s.singles.len()) as f64;

    let mut scratch = ReplayScratch::new();
    // Warmup both paths, then 20 interleaved rounds.
    sweep_batched(&s, &agent, &mut scratch);
    sweep_bitparallel(&s, &agent, &mut scratch);
    let (mut batched_secs, mut bp_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..20 {
        let t = Instant::now();
        sweep_batched(&s, &agent, &mut scratch);
        batched_secs = batched_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        sweep_bitparallel(&s, &agent, &mut scratch);
        bp_secs = bp_secs.min(t.elapsed().as_secs_f64());
    }

    let batched_fps = flows_per_sweep / batched_secs;
    let bp_fps = flows_per_sweep / bp_secs;
    let speedup = bp_fps / batched_fps;
    println!(
        "gate: geant bit-parallel {:.1}M flows/s, batched {:.1}M flows/s, speedup {speedup:.2}x \
         (floor {:.1}M)",
        bp_fps / 1e6,
        batched_fps / 1e6,
        PR5_BATCHED_FLOWS_PER_SEC / 1e6,
    );
    assert!(
        speedup >= 2.0,
        "flows/s gate: bit-parallel must be >= 2x batched on geant, got {speedup:.2}x \
         ({:.1}M vs {:.1}M flows/s)",
        bp_fps / 1e6,
        batched_fps / 1e6,
    );
    assert!(
        bp_fps >= PR5_BATCHED_FLOWS_PER_SEC,
        "flows/s gate: bit-parallel fell below PR 5's recorded batched median \
         ({:.1}M < {:.1}M flows/s)",
        bp_fps / 1e6,
        PR5_BATCHED_FLOWS_PER_SEC / 1e6,
    );
}

fn bench_traffic_replay(c: &mut Criterion) {
    flows_per_sec_gate();

    let mut group = c.benchmark_group("traffic_replay");
    for isp in [Isp::Abilene, Isp::Geant] {
        let s = setup(isp);
        let agent = s.net.agent(&s.graph);
        let label = format!("{isp}/{}flows-x{}scenarios", s.flows.len(), s.singles.len());

        // One iteration = the full single-failure sweep of the matrix
        // (the per-scenario work unit of pr_bench::traffic::run, run
        // serially so the variants compare dataplanes, not thread
        // counts).
        group.bench_with_input(BenchmarkId::new("bitparallel", &label), &s, |b, s| {
            let mut scratch = ReplayScratch::new();
            b.iter(|| sweep_bitparallel(s, &agent, &mut scratch))
        });

        group.bench_with_input(BenchmarkId::new("batched", &label), &s, |b, s| {
            let mut scratch = ReplayScratch::new();
            b.iter(|| sweep_batched(s, &agent, &mut scratch))
        });

        group.bench_with_input(BenchmarkId::new("naive", &label), &s, |b, s| {
            b.iter(|| {
                for i in 0..s.singles.len() {
                    let failed = s.singles.scenario(i);
                    black_box(replay_scenario_naive(
                        &s.graph, &agent, &s.base, &s.flows, &failed, s.ttl,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traffic_replay);
criterion_main!(benches);
