//! Throughput micro-benchmark for the batched flow-replay dataplane
//! (PR 5): the per-scenario replay of a whole gravity traffic matrix,
//! batched (FIB fast path + reused scratch + incremental SPT repair)
//! versus naive (one `walk_packet` per flow, fresh scratch, per-
//! destination from-scratch survivor trees).
//!
//! Both variants produce the identical `ScenarioTraffic` (asserted by
//! the pr-traffic tests and the determinism suite); only the time per
//! replayed flow differs. BENCH_pr5.json records the medians and the
//! derived flows/sec; the acceptance bar is a ≥2x batched-vs-naive
//! delta.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_core::{generous_ttl, DiscriminatorKind, Fib, PrMode, PrNetwork};
use pr_graph::AllPairs;
use pr_scenarios::{ScenarioFamily, SingleLinkFailures};
use pr_topologies::{Isp, Weighting};
use pr_traffic::{replay_scenario, replay_scenario_naive, FlowSet, GravityTraffic, ReplayScratch};

fn bench_traffic_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_replay");
    for isp in [Isp::Abilene, Isp::Geant] {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        let rot = pr_embedding::heuristics::thorough(&graph, 2010, 4, 20_000);
        let emb = pr_embedding::CellularEmbedding::new(&graph, rot).expect("connected");
        let net =
            PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = net.agent(&graph);
        let base = AllPairs::compute_all_live(&graph);
        let fib = Fib::from_base(&graph, &base);
        let flows = FlowSet::all_pairs(&GravityTraffic::new(&graph));
        let singles = SingleLinkFailures::new(&graph);
        let ttl = generous_ttl(&graph);
        let label = format!("{isp}/{}flows-x{}scenarios", flows.len(), singles.len());

        // One iteration = the full single-failure sweep of the matrix
        // (the per-scenario work unit of pr_bench::traffic::run, run
        // serially so the two variants compare dataplanes, not thread
        // counts).
        group.bench_with_input(BenchmarkId::new("batched", &label), &graph, |b, g| {
            let mut scratch = ReplayScratch::new();
            b.iter(|| {
                for i in 0..singles.len() {
                    let failed = singles.scenario(i);
                    black_box(replay_scenario(
                        g,
                        &agent,
                        &fib,
                        &base,
                        &flows,
                        &failed,
                        ttl,
                        &mut scratch,
                    ));
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("naive", &label), &graph, |b, g| {
            b.iter(|| {
                for i in 0..singles.len() {
                    let failed = singles.scenario(i);
                    black_box(replay_scenario_naive(g, &agent, &base, &flows, &failed, ttl));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traffic_replay);
criterion_main!(benches);
