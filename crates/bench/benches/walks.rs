//! The walk-engine micro-benchmarks, plus the suffix-memo gate.
//!
//! **The gate** (runs even under `--test`, so CI's bench smoke step
//! enforces it): on a 500-node synthetic ISP mesh, sweeping every
//! affected source of a set of (failure, destination) units through
//! `walk_packet_spliced` must be ≥ 1.5x the plain per-source
//! `walk_packet_with` sweep, and must stay under an absolute ns/walk
//! ceiling. Shared suffixes dominate these units (all sources converge
//! downstream of the detour), so the expected margin is well above 2x;
//! 1.5x is the hard floor against regressions.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_core::{
    generous_ttl, walk_packet_spliced, walk_packet_with, DiscriminatorKind, PrAgent, PrMode,
    PrNetwork, SuffixMemo, WalkScratch,
};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::generators::{self, MeshParams};
use pr_graph::{AllPairs, Graph, LinkId, LinkSet, NodeId};

/// Absolute ceiling on the memoized sweep's time per walk on the
/// mesh-500 fixture. Recorded from a dev-container measurement
/// (~140ns/walk at 86% spliced share) with ~35x headroom for slower
/// CI hardware.
const NS_PER_WALK_CEILING: f64 = 5_000.0;

/// One (failure, destination) unit with its affected sources.
struct Unit {
    failed: LinkSet,
    dst: NodeId,
    sources: Vec<NodeId>,
}

/// Deterministic unit set: the first 24 links as single failures, each
/// against 4 spread-out destinations, keeping only units with a
/// non-empty affected cone.
fn build_units(graph: &Graph, base: &AllPairs) -> Vec<Unit> {
    let n = graph.node_count() as u32;
    let mut units = Vec::new();
    for l in 0..24u32 {
        let failed = LinkSet::from_links(graph.link_count(), [LinkId(l)]);
        for d in 0..4u32 {
            let dst = NodeId(d * (n / 4));
            let base_tree = base.towards(dst);
            let sources: Vec<NodeId> = graph
                .nodes()
                .filter(|&src| src != dst && base_tree.path_crosses(graph, src, &failed))
                .collect();
            if !sources.is_empty() {
                units.push(Unit { failed: failed.clone(), dst, sources });
            }
        }
    }
    units
}

/// Plain per-source walks: `(delivered, total cost)` over all units.
fn sweep_plain(
    graph: &Graph,
    agent: &PrAgent<'_>,
    units: &[Unit],
    ttl: usize,
    scratch: &mut WalkScratch<pr_core::PrHeader>,
) -> (u64, u64) {
    let (mut delivered, mut cost) = (0u64, 0u64);
    for unit in units {
        for &src in &unit.sources {
            let w = walk_packet_with(graph, agent, src, unit.dst, &unit.failed, ttl, scratch);
            if w.result.is_delivered() {
                delivered += 1;
                cost += w.cost(graph);
            }
        }
    }
    (delivered, cost)
}

/// The memoized unit sweep: identical walks, suffixes spliced.
fn sweep_memoized(
    graph: &Graph,
    agent: &PrAgent<'_>,
    units: &[Unit],
    ttl: usize,
    scratch: &mut WalkScratch<pr_core::PrHeader>,
    memo: &mut SuffixMemo<pr_core::PrHeader>,
) -> (u64, u64) {
    let (mut delivered, mut cost) = (0u64, 0u64);
    for unit in units {
        memo.begin_unit();
        for &src in &unit.sources {
            let w =
                walk_packet_spliced(graph, agent, src, unit.dst, &unit.failed, ttl, scratch, memo);
            if w.result.is_delivered() {
                delivered += 1;
                cost += w.cost;
            }
        }
    }
    (delivered, cost)
}

fn mesh500() -> (Graph, PrNetwork) {
    let graph = generators::isp_mesh(&MeshParams::new(500, 2010));
    let rot = RotationSystem::geometric(&graph).expect("mesh has coordinates");
    let emb = CellularEmbedding::new(&graph, rot).expect("connected");
    let net =
        PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    (graph, net)
}

/// The suffix-memo regression gate on the 500-node mesh. Panics
/// (failing the bench run, `--test` smoke mode included) when the
/// memoized unit sweep loses its 1.5x margin over plain per-source
/// walks, or exceeds the absolute ns/walk ceiling.
///
/// Measurement discipline matches the embedding gate: both sweeps are
/// timed **interleaved** and each takes its best (minimum) of 20
/// rounds, so shared-machine throttling hits both sides of the ratio
/// alike.
fn walk_memo_gate() {
    let (graph, net) = mesh500();
    let agent = net.agent(&graph);
    let base = AllPairs::compute_all_live(&graph);
    let units = build_units(&graph, &base);
    let walks: usize = units.iter().map(|u| u.sources.len()).sum();
    assert!(walks > 1_000, "mesh-500 gate needs a meaningful unit set, got {walks} walks");
    let ttl = generous_ttl(&graph);
    let mut scratch = WalkScratch::new();
    let mut memo = SuffixMemo::new();

    // Warmup both paths; the tallies must agree or the comparison is
    // meaningless (and the memo would be unsound).
    let plain = sweep_plain(&graph, &agent, &units, ttl, &mut scratch);
    let memoized = sweep_memoized(&graph, &agent, &units, ttl, &mut scratch, &mut memo);
    assert_eq!(plain, memoized, "memoized sweep must reproduce plain deliveries and costs");
    let stats = memo.take_stats();
    assert!(stats.hits > 0, "the mesh-500 unit set must actually splice");

    let (mut plain_secs, mut memo_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..20 {
        let t = Instant::now();
        black_box(sweep_plain(&graph, &agent, &units, ttl, &mut scratch));
        plain_secs = plain_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(sweep_memoized(&graph, &agent, &units, ttl, &mut scratch, &mut memo));
        memo_secs = memo_secs.min(t.elapsed().as_secs_f64());
    }

    let speedup = plain_secs / memo_secs;
    let ns_per_walk = memo_secs * 1e9 / walks as f64;
    println!(
        "gate: mesh500 memoized sweep {ns_per_walk:.0}ns/walk, plain {:.0}ns/walk, \
         speedup {speedup:.2}x (floor 1.5x, ceiling {NS_PER_WALK_CEILING:.0}ns/walk, \
         {walks} walks, spliced share {:.1}%)",
        plain_secs * 1e9 / walks as f64,
        100.0 * stats.spliced_share(),
    );
    assert!(
        speedup >= 1.5,
        "walk gate: memoized unit sweep must be >= 1.5x plain per-source walks on the \
         500-node mesh, got {speedup:.2}x"
    );
    assert!(
        ns_per_walk <= NS_PER_WALK_CEILING,
        "walk gate: memoized sweep exceeded the ns/walk ceiling: \
         {ns_per_walk:.0}ns > {NS_PER_WALK_CEILING:.0}ns"
    );
}

fn bench_walks(c: &mut Criterion) {
    walk_memo_gate();

    let (graph, net) = mesh500();
    let agent = net.agent(&graph);
    let base = AllPairs::compute_all_live(&graph);
    let units = build_units(&graph, &base);
    let ttl = generous_ttl(&graph);

    let mut group = c.benchmark_group("walk_sweep");
    group.bench_function(BenchmarkId::new("plain", "mesh500"), |b| {
        let mut scratch = WalkScratch::new();
        b.iter(|| black_box(sweep_plain(&graph, &agent, &units, ttl, &mut scratch)))
    });
    group.bench_function(BenchmarkId::new("memoized", "mesh500"), |b| {
        let mut scratch = WalkScratch::new();
        let mut memo = SuffixMemo::new();
        b.iter(|| black_box(sweep_memoized(&graph, &agent, &units, ttl, &mut scratch, &mut memo)))
    });
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
