//! E9: offline table-compilation cost.
//!
//! PR's precomputation happens once per topology change (§4.3: on a
//! designated server); this bench quantifies "relatively expensive
//! computations offline" for the three paper topologies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_core::{CycleFollowingTable, DiscriminatorKind, PrMode, PrNetwork, RoutingTables};
use pr_embedding::CellularEmbedding;
use pr_graph::AllPairs;
use pr_topologies::{Isp, Weighting};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_compilation");
    for isp in Isp::ALL {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        let rot = pr_embedding::heuristics::best_effort(&graph, 1);
        let emb = CellularEmbedding::new(&graph, rot).unwrap();

        group.bench_with_input(BenchmarkId::new("all_pairs_dijkstra", isp), &graph, |b, g| {
            b.iter(|| black_box(AllPairs::compute_all_live(g)))
        });

        let ap = AllPairs::compute_all_live(&graph);
        group.bench_with_input(BenchmarkId::new("routing_tables", isp), &graph, |b, g| {
            b.iter(|| black_box(RoutingTables::compile(g, &ap)))
        });

        group.bench_with_input(BenchmarkId::new("cycle_following_table", isp), &graph, |b, g| {
            b.iter(|| black_box(CycleFollowingTable::compile(g, &emb)))
        });

        group.bench_with_input(BenchmarkId::new("full_pr_network", isp), &graph, |b, g| {
            b.iter(|| {
                black_box(PrNetwork::compile(
                    g,
                    emb.clone(),
                    PrMode::DistanceDiscriminator,
                    DiscriminatorKind::Hops,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
