//! E9: per-packet forwarding decision latency.
//!
//! The paper's §6 claims PR adds "insignificant" packet processing
//! time: a forwarding decision is two table lookups. This bench
//! measures PR's decision (failure-free and during cycle following)
//! against LFA (also table-driven) and FCP (which runs Dijkstra per
//! decision once failures are carried).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pr_baselines::{FcpAgent, FcpState, LfaAgent};
use pr_core::{DiscriminatorKind, ForwardingAgent, PrHeader, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_graph::{LinkSet, NodeId};
use pr_topologies::{Isp, Weighting};

fn bench_forwarding(c: &mut Criterion) {
    let graph = pr_topologies::load(Isp::Geant, Weighting::Distance);
    let rot = pr_embedding::heuristics::best_effort(&graph, 1);
    let emb = CellularEmbedding::new(&graph, rot).unwrap();
    let net =
        PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let pr = net.agent(&graph);
    let fcp = FcpAgent::new(&graph);
    let lfa = LfaAgent::compute(&graph);

    let none = LinkSet::empty(graph.link_count());
    let src = NodeId(0);
    let dst = NodeId((graph.node_count() - 1) as u32);
    let failed_link = net.routing().next_dart(src, dst).unwrap().link();
    let one_failed = LinkSet::from_links(graph.link_count(), [failed_link]);

    let mut group = c.benchmark_group("forwarding_decision");

    group.bench_function("pr_dd_failure_free", |b| {
        b.iter(|| {
            let mut state = PrHeader::default();
            black_box(pr.decide(black_box(src), None, black_box(dst), &mut state, &none))
        })
    });

    group.bench_function("pr_dd_deflecting", |b| {
        b.iter(|| {
            let mut state = PrHeader::default();
            black_box(pr.decide(black_box(src), None, black_box(dst), &mut state, &one_failed))
        })
    });

    group.bench_function("lfa_failure_free", |b| {
        b.iter(|| {
            let mut state = ();
            black_box(lfa.decide(black_box(src), None, black_box(dst), &mut state, &none))
        })
    });

    group.bench_function("fcp_failure_free", |b| {
        b.iter(|| {
            let mut state = FcpState::default();
            black_box(fcp.decide(black_box(src), None, black_box(dst), &mut state, &none))
        })
    });

    group.bench_function("fcp_one_carried_failure", |b| {
        b.iter(|| {
            let mut state = FcpState::default();
            black_box(fcp.decide(black_box(src), None, black_box(dst), &mut state, &one_failed))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
