//! E9: cost of the offline embedding search itself (face tracing, one
//! local move, annealing).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_embedding::{heuristics, FaceStructure, RotationSystem};
use pr_topologies::{Isp, Weighting};

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");
    for isp in Isp::ALL {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        let rot = RotationSystem::geometric(&graph).unwrap();

        group.bench_with_input(BenchmarkId::new("face_tracing", isp), &graph, |b, g| {
            b.iter(|| black_box(FaceStructure::trace(g, &rot)))
        });

        let dart = first_movable_dart(&graph);
        group.bench_with_input(BenchmarkId::new("single_move", isp), &graph, |b, g| {
            b.iter(|| black_box(rot.with_dart_moved(g, dart, 1)))
        });

        group.bench_with_input(BenchmarkId::new("anneal_2000", isp), &graph, |b, g| {
            b.iter(|| {
                black_box(heuristics::anneal(
                    g,
                    rot.clone(),
                    heuristics::AnnealParams { iterations: 2000, t_start: 2.0, t_end: 0.05 },
                    7,
                ))
            })
        });
    }
    group.finish();
}

fn first_movable_dart(graph: &pr_graph::Graph) -> pr_graph::Dart {
    graph
        .nodes()
        .find(|&n| graph.degree(n) >= 3)
        .map(|n| graph.darts_from(n)[0])
        .expect("ISP topologies have a node of degree >= 3")
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
