//! E9: cost of the offline embedding search itself (face tracing, one
//! local move, annealing), plus the incremental-evaluation gate.
//!
//! **The gate** (runs even under `--test`, so CI's bench smoke step
//! enforces it): on a 500-node synthetic ISP mesh, scoring a candidate
//! dart move via `FaceScratch::eval_move`/`revert` must be ≥ 5x faster
//! than the full-retrace reference (`with_dart_moved` + a fresh
//! `FaceStructure::trace`). The incremental path retraces only the
//! faces through the moved dart's node — O(degree · face length) — so
//! on large meshes the expected margin is well above 10x; 5x is the
//! hard floor against regressions.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_embedding::{heuristics, FaceScratch, FaceStructure, RotationSystem};
use pr_graph::generators::{self, MeshParams};
use pr_topologies::{Isp, Weighting};

/// Deterministic candidate-move set: the first dart of every node of
/// degree ≥ 3, rotated one slot — the same move shape the hill-climb
/// and annealer propose.
fn candidate_moves(graph: &pr_graph::Graph) -> Vec<(pr_graph::Dart, usize)> {
    graph
        .nodes()
        .filter(|&n| graph.degree(n) >= 3)
        .map(|n| (graph.darts_from(n)[0], 1))
        .take(64)
        .collect()
}

/// Scores every candidate by cloning the rotation and retracing all
/// faces — the pre-incremental evaluation path.
fn eval_full(
    graph: &pr_graph::Graph,
    rot: &RotationSystem,
    moves: &[(pr_graph::Dart, usize)],
) -> usize {
    let mut acc = 0;
    for &(dart, offset) in moves {
        acc += FaceStructure::trace(graph, &rot.with_dart_moved(graph, dart, offset)).face_count();
    }
    acc
}

/// Scores every candidate through the reusable [`FaceScratch`] arena,
/// reverting after each evaluation.
fn eval_incremental(
    graph: &pr_graph::Graph,
    rot: &mut RotationSystem,
    scratch: &mut FaceScratch,
    moves: &[(pr_graph::Dart, usize)],
) -> usize {
    let mut acc = 0;
    for &(dart, offset) in moves {
        acc += scratch.eval_move(graph, rot, dart, offset);
        scratch.revert(rot);
    }
    acc
}

/// The incremental-evaluation regression gate on a 500-node mesh.
/// Panics (failing the bench run, `--test` smoke mode included) when
/// `FaceScratch` loses its 5x margin over full retracing.
///
/// Measurement discipline matches the flows/s gate: the two evaluators
/// are timed **interleaved** and each takes its best (minimum) of 20
/// rounds, so shared-machine throttling hits both sides of the ratio
/// alike.
fn incremental_eval_gate() {
    let graph = generators::isp_mesh(&MeshParams::new(500, 2010));
    let mut rot = RotationSystem::geometric(&graph).expect("mesh has coordinates");
    let moves = candidate_moves(&graph);
    let mut scratch = FaceScratch::new(&graph, &rot);

    // Warmup both paths; the scores must agree or the comparison is
    // meaningless.
    let full = eval_full(&graph, &rot, &moves);
    let incremental = eval_incremental(&graph, &mut rot, &mut scratch, &moves);
    assert_eq!(full, incremental, "incremental face counts must match full retraces");

    let (mut full_secs, mut inc_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..20 {
        let t = Instant::now();
        black_box(eval_full(&graph, &rot, &moves));
        full_secs = full_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(eval_incremental(&graph, &mut rot, &mut scratch, &moves));
        inc_secs = inc_secs.min(t.elapsed().as_secs_f64());
    }

    let speedup = full_secs / inc_secs;
    println!(
        "gate: mesh500 incremental eval {:.2}µs/move, full retrace {:.2}µs/move, \
         speedup {speedup:.1}x (floor 5x)",
        inc_secs * 1e6 / moves.len() as f64,
        full_secs * 1e6 / moves.len() as f64,
    );
    assert!(
        speedup >= 5.0,
        "embedding gate: FaceScratch::eval_move must be >= 5x a full retrace on the \
         500-node mesh, got {speedup:.1}x ({:.2}µs vs {:.2}µs per move)",
        inc_secs * 1e6 / moves.len() as f64,
        full_secs * 1e6 / moves.len() as f64,
    );
}

fn bench_embedding(c: &mut Criterion) {
    incremental_eval_gate();

    {
        let graph = generators::isp_mesh(&MeshParams::new(500, 2010));
        let rot = RotationSystem::geometric(&graph).expect("mesh has coordinates");
        let moves = candidate_moves(&graph);
        let mut group = c.benchmark_group("embedding_eval");
        group.bench_function(BenchmarkId::new("full_retrace", "mesh500"), |b| {
            b.iter(|| black_box(eval_full(&graph, &rot, &moves)))
        });
        group.bench_function(BenchmarkId::new("incremental", "mesh500"), |b| {
            let mut rot = rot.clone();
            let mut scratch = FaceScratch::new(&graph, &rot);
            b.iter(|| black_box(eval_incremental(&graph, &mut rot, &mut scratch, &moves)))
        });
        group.finish();
    }
    let mut group = c.benchmark_group("embedding");
    for isp in Isp::ALL {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        let rot = RotationSystem::geometric(&graph).unwrap();

        group.bench_with_input(BenchmarkId::new("face_tracing", isp), &graph, |b, g| {
            b.iter(|| black_box(FaceStructure::trace(g, &rot)))
        });

        let dart = first_movable_dart(&graph);
        group.bench_with_input(BenchmarkId::new("single_move", isp), &graph, |b, g| {
            b.iter(|| black_box(rot.with_dart_moved(g, dart, 1)))
        });

        group.bench_with_input(BenchmarkId::new("anneal_2000", isp), &graph, |b, g| {
            b.iter(|| {
                black_box(heuristics::anneal(
                    g,
                    rot.clone(),
                    heuristics::AnnealParams { iterations: 2000, t_start: 2.0, t_end: 0.05 },
                    7,
                ))
            })
        });
    }
    group.finish();
}

fn first_movable_dart(graph: &pr_graph::Graph) -> pr_graph::Dart {
    graph
        .nodes()
        .find(|&n| graph.degree(n) >= 3)
        .map(|n| graph.darts_from(n)[0])
        .expect("ISP topologies have a node of degree >= 3")
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
