//! E9: end-to-end per-packet cost under failure, scheme vs scheme —
//! one full source-to-destination walk including every per-hop
//! decision. This is where FCP's per-router recomputation shows up
//! against PR's constant-time lookups, the §6 computational argument.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_baselines::{FcpAgent, ReconvergenceAgent};
use pr_core::{generous_ttl, walk_packet, DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_graph::{LinkSet, NodeId};
use pr_topologies::{Isp, Weighting};

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_walk_under_failure");
    for isp in Isp::ALL {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        let rot = pr_embedding::heuristics::best_effort(&graph, 1);
        let emb = CellularEmbedding::new(&graph, rot).unwrap();
        let net =
            PrNetwork::compile(&graph, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let pr = net.agent(&graph);
        let fcp = FcpAgent::new(&graph);

        // Fail the first hop of the longest shortest path: worst-case
        // detour for all schemes.
        let (src, dst) = farthest_pair(&graph);
        let failed_link = net.routing().next_dart(src, dst).unwrap().link();
        let failed = LinkSet::from_links(graph.link_count(), [failed_link]);
        let reconv = ReconvergenceAgent::converged_on(&graph, &failed);
        let ttl = generous_ttl(&graph);

        group.bench_with_input(BenchmarkId::new("pr_dd", isp), &graph, |b, g| {
            b.iter(|| black_box(walk_packet(g, &pr, src, dst, &failed, ttl)))
        });
        group.bench_with_input(BenchmarkId::new("fcp", isp), &graph, |b, g| {
            b.iter(|| black_box(walk_packet(g, &fcp, src, dst, &failed, ttl)))
        });
        group.bench_with_input(BenchmarkId::new("reconvergence_lookup", isp), &graph, |b, g| {
            b.iter(|| black_box(walk_packet(g, &reconv, src, dst, &failed, ttl)))
        });
        // The cost reconvergence actually pays: rebuilding all tables.
        group.bench_with_input(BenchmarkId::new("reconvergence_recompute", isp), &graph, |b, g| {
            b.iter(|| black_box(ReconvergenceAgent::converged_on(g, &failed)))
        });
    }
    group.finish();
}

fn farthest_pair(graph: &pr_graph::Graph) -> (NodeId, NodeId) {
    let ap = pr_graph::AllPairs::compute_all_live(graph);
    let mut best = (NodeId(0), NodeId(0), 0u64);
    for s in graph.nodes() {
        for d in graph.nodes() {
            if let Some(c) = ap.cost(s, d) {
                if c > best.2 {
                    best = (s, d, c);
                }
            }
        }
    }
    (best.0, best.1)
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
