//! End-to-end scenario-sweep benchmarks — the numbers behind
//! `BENCH_pr2.json`.
//!
//! Three variants per experiment, same scenario space and identical
//! output (see `tests/determinism.rs`):
//!
//! * `serial` — the seed harness's nested loop (`run_serial`): honest
//!   recompute-per-decision FCP, one-shot walker allocations. This is
//!   the "before" an optimisation PR compares against. (It already
//!   includes the base-tree hoist, so it *understates* the seed's true
//!   cost — speedups reported against it are conservative.)
//! * `engine1` — the scenario-sweep engine pinned to one thread:
//!   hoisted base trees, per-worker FCP route caches, reusable walk
//!   scratches — the single-core fast path.
//! * `engine_mt` — the engine at the machine's available parallelism
//!   (identical to `engine1` on a 1-core container).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

use pr_bench::{engine, paper_topology, scenario, EXPERIMENT_SEED};
use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_graph::{Graph, LinkSet};
use pr_scenarios::{OutageParams, OutageSweep};
use pr_sim::SimConfig;
use pr_topologies::Isp;

/// GÉANT — the largest paper topology, hence the headline sweep — with
/// its certified embedding, computed once per process.
fn geant() -> &'static (Graph, CellularEmbedding) {
    static CELL: OnceLock<(Graph, CellularEmbedding)> = OnceLock::new();
    CELL.get_or_init(|| paper_topology(Isp::Geant))
}

fn geant_pr() -> &'static PrNetwork {
    static CELL: OnceLock<PrNetwork> = OnceLock::new();
    CELL.get_or_init(|| {
        let (graph, embedding) = geant();
        PrNetwork::compile(
            graph,
            embedding.clone(),
            PrMode::DistanceDiscriminator,
            DiscriminatorKind::Hops,
        )
    })
}

fn geant_singles() -> &'static Vec<LinkSet> {
    static CELL: OnceLock<Vec<LinkSet>> = OnceLock::new();
    CELL.get_or_init(|| scenario::all_single_failures(&geant().0))
}

/// Coverage sweep (E5 shape): all five schemes over every exhaustive
/// single-failure scenario of GÉANT.
fn sweep_coverage(c: &mut Criterion) {
    let (graph, embedding) = geant();
    let mut group = c.benchmark_group("sweep_coverage");
    group.bench_function("serial/geant", |b| {
        b.iter(|| pr_bench::coverage::run_serial(graph, embedding, 1, 50, EXPERIMENT_SEED))
    });
    group.bench_function("engine1/geant", |b| {
        b.iter(|| pr_bench::coverage::run(graph, embedding, 1, 50, EXPERIMENT_SEED, 1))
    });
    group.bench_function("engine_mt/geant", |b| {
        let threads = engine::default_threads();
        b.iter(|| pr_bench::coverage::run(graph, embedding, 1, 50, EXPERIMENT_SEED, threads))
    });
    group.finish();
}

/// Stretch sweep (Figure 2 shape): reconvergence, FCP and PR over
/// every exhaustive single-failure scenario of GÉANT.
fn sweep_stretch(c: &mut Criterion) {
    let (graph, _) = geant();
    let pr = geant_pr();
    let scenarios = geant_singles();
    let mut group = c.benchmark_group("sweep_stretch");
    group.bench_function("serial/geant", |b| {
        b.iter(|| pr_bench::stretch::run_serial(graph, pr, scenarios))
    });
    group.bench_function("engine1/geant", |b| {
        b.iter(|| pr_bench::stretch::run(graph, pr, scenarios, 1))
    });
    group.bench_function("engine_mt/geant", |b| {
        let threads = engine::default_threads();
        b.iter(|| pr_bench::stretch::run(graph, pr, scenarios, threads))
    });
    group.finish();
}

/// Temporal sweep (E10 shape generalised): the OC-192 outage family
/// across **all** single-link failures of GÉANT, replayed through the
/// discrete-event simulator under PR and a reconverging IGP. Short
/// flows keep one iteration benchmark-sized; the scenario count and
/// per-scenario work match the real experiment's shape.
fn sweep_temporal(c: &mut Criterion) {
    let (graph, _) = geant();
    let pr = geant_pr();
    let params = OutageParams {
        interval_ns: 500_000, // 2 kpps
        fail_at_ns: 10_000_000,
        down_for_ns: 40_000_000,
        igp_convergence_ns: 40_000_000,
        duration_ns: 80_000_000,
        ..OutageParams::default()
    };
    let family = OutageSweep::new(graph, params);
    let config = SimConfig::default();
    let mut group = c.benchmark_group("sweep_temporal");
    group.bench_function("serial/geant", |b| {
        b.iter(|| pr_bench::temporal::run_serial(graph, pr, &family, &config, EXPERIMENT_SEED))
    });
    group.bench_function("engine1/geant", |b| {
        b.iter(|| pr_bench::temporal::run(graph, pr, &family, &config, EXPERIMENT_SEED, 1))
    });
    group.bench_function("engine_mt/geant", |b| {
        let threads = engine::default_threads();
        b.iter(|| pr_bench::temporal::run(graph, pr, &family, &config, EXPERIMENT_SEED, threads))
    });
    group.finish();
}

criterion_group!(sweeps, sweep_coverage, sweep_stretch, sweep_temporal);
criterion_main!(sweeps);
