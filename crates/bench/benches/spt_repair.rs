//! Micro-benchmark for the incremental SPT machinery of PR 4: the
//! per-(scenario, destination) live-tree rebuild that dominates every
//! sweep's work unit.
//!
//! Three variants per topology, identical output (the equivalence
//! proptests in pr-graph and pr-topologies assert bitwise equality):
//!
//! * `towards` — the one-shot from-scratch Dijkstra (fresh
//!   allocations per call: the pre-PR 4 hot path);
//! * `towards_with` — from-scratch through a reusable [`SpScratch`]
//!   arena (no per-call label/heap allocations);
//! * `repair` — incremental repair from the hoisted failure-free base
//!   tree (`repair_refresh`: zero-allocation steady state, only the
//!   affected cone re-labelled).
//!
//! Each iteration sweeps every destination under a fixed k-failure
//! scenario — the exact shape of one scenario's work in the engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_graph::{AllPairs, LinkId, LinkSet, SpScratch, SpTree};
use pr_topologies::{Isp, Weighting};

/// A deterministic k-link failure set (splitmix-style hashing, no RNG
/// dependency in the bench).
fn failure_set(link_count: usize, k: usize, seed: u64) -> LinkSet {
    let mut failed = LinkSet::empty(link_count);
    let mut x = seed;
    while failed.len() < k {
        x = x.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        failed.insert(LinkId((x >> 33) as u32 % link_count as u32));
    }
    failed
}

fn bench_spt_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("spt_repair");
    for isp in Isp::ALL {
        let graph = pr_topologies::load(isp, Weighting::Distance);
        let base = AllPairs::compute_all_live(&graph);
        for k in [1usize, 3] {
            let failed = failure_set(graph.link_count(), k, 2010 + k as u64);
            let label = format!("{isp}/k{k}");

            group.bench_with_input(BenchmarkId::new("towards", &label), &graph, |b, g| {
                b.iter(|| {
                    for dest in g.nodes() {
                        black_box(SpTree::towards(g, dest, &failed));
                    }
                })
            });

            group.bench_with_input(BenchmarkId::new("towards_with", &label), &graph, |b, g| {
                let mut scratch = SpScratch::new();
                b.iter(|| {
                    for dest in g.nodes() {
                        black_box(SpTree::towards_with(g, dest, &failed, &mut scratch));
                    }
                })
            });

            group.bench_with_input(BenchmarkId::new("repair", &label), &graph, |b, g| {
                let mut scratch = SpScratch::new();
                let mut live = SpTree::placeholder();
                b.iter(|| {
                    for dest in g.nodes() {
                        live.repair_refresh(base.towards(dest), g, &failed, &mut scratch);
                        black_box(&live);
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spt_repair);
criterion_main!(benches);
