//! Impairment-layer micro-benchmarks, plus the decorator-overhead gate.
//!
//! **The gate** (runs even under `--test`, so CI's bench smoke step
//! enforces it): on Abilene with sweep-friendly outage timings, an
//! identity-configured (rate-0 Gilbert–Elliott) `Impaired` decorator
//! must replay the whole demand-weighted loss-over-time sweep within
//! 1.5x of the undecorated family. The decorator only rebuilds each
//! scenario's event timeline — the replay dominates — so the expected
//! ratio is ~1.0x; 1.5x is the hard ceiling against regressions in the
//! decorator path (event merging, seeding, label plumbing).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pr_bench::impair;
use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_graph::Graph;
use pr_scenarios::{Impaired, ImpairmentProcess, OutageParams, OutageSweep};
use pr_topologies::Isp;
use pr_traffic::{FlowSet, GravityTraffic};

/// Sweep-friendly timings: 80 ms flows, 40 ms IGP convergence —
/// the same shape the determinism suite and the golden CSV pin use.
fn quick_params() -> OutageParams {
    OutageParams {
        interval_ns: 500_000,
        fail_at_ns: 10_000_000,
        down_for_ns: 40_000_000,
        igp_convergence_ns: 40_000_000,
        duration_ns: 80_000_000,
        ..OutageParams::default()
    }
}

fn abilene() -> (Graph, PrNetwork, FlowSet) {
    let (g, emb) = pr_bench::paper_topology(Isp::Abilene);
    let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    let flows = FlowSet::all_pairs(&GravityTraffic::new(&g));
    (g, net, flows)
}

/// The decorator-overhead regression gate. Panics (failing the bench
/// run, `--test` smoke mode included) when a rate-0 `Impaired`
/// wrapper costs more than 1.5x the undecorated sweep it must be
/// bit-identical to.
///
/// Measurement discipline matches the walk gate: both sweeps are
/// timed **interleaved** and each takes its best (minimum) of 20
/// rounds, so shared-machine throttling hits both sides of the ratio
/// alike.
fn impair_overhead_gate() {
    let (g, net, flows) = abilene();
    let plain = OutageSweep::new(&g, quick_params());
    let identity = Impaired::new(
        &g,
        OutageSweep::new(&g, quick_params()),
        ImpairmentProcess::GilbertElliott { fail_rate_per_s: 0.0, mean_down_ns: 1 },
        pr_bench::EXPERIMENT_SEED,
    );

    // Warmup both paths; a rate-0 decorator that changes the rows
    // would make the timing comparison meaningless (and break the
    // identity contract the proptests pin).
    let plain_rows = impair::run_serial(&g, &net, &plain, &flows);
    let identity_rows = impair::run_serial(&g, &net, &identity, &flows);
    assert_eq!(plain_rows, identity_rows, "rate-0 decorator must be the identity");
    assert!(!plain_rows.is_empty(), "the gate needs a non-trivial sweep");

    let (mut plain_secs, mut decorated_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..20 {
        let t = Instant::now();
        black_box(impair::run_serial(&g, &net, &plain, &flows));
        plain_secs = plain_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(impair::run_serial(&g, &net, &identity, &flows));
        decorated_secs = decorated_secs.min(t.elapsed().as_secs_f64());
    }

    let ratio = decorated_secs / plain_secs;
    println!(
        "gate: abilene impair sweep decorated {:.2}ms, undecorated {:.2}ms, \
         ratio {ratio:.3}x (ceiling 1.5x, {} scenarios)",
        decorated_secs * 1e3,
        plain_secs * 1e3,
        plain_rows.len(),
    );
    assert!(
        ratio <= 1.5,
        "impairment gate: a rate-0 decorator must stay within 1.5x of the \
         undecorated sweep, got {ratio:.3}x"
    );
}

fn bench_impairments(c: &mut Criterion) {
    impair_overhead_gate();

    let (g, net, flows) = abilene();
    let plain = OutageSweep::new(&g, quick_params());
    let gilbert = Impaired::new(
        &g,
        OutageSweep::new(&g, quick_params()),
        ImpairmentProcess::GilbertElliott { fail_rate_per_s: 25.0, mean_down_ns: 8_000_000 },
        pr_bench::EXPERIMENT_SEED,
    );

    let mut group = c.benchmark_group("impair_sweep");
    group.bench_function(BenchmarkId::new("undecorated", "abilene"), |b| {
        b.iter(|| black_box(impair::run_serial(&g, &net, &plain, &flows)))
    });
    group.bench_function(BenchmarkId::new("gilbert_live", "abilene"), |b| {
        b.iter(|| black_box(impair::run_serial(&g, &net, &gilbert, &flows)))
    });
    group.finish();

    // Scenario generation alone — the decorator's own cost, without
    // the replay that dominates the sweep benches above.
    let mut gen = c.benchmark_group("impair_scenario_gen");
    gen.bench_function(BenchmarkId::new("gilbert", "abilene"), |b| {
        use pr_scenarios::TemporalFamily;
        b.iter(|| {
            let mut events = 0usize;
            for i in 0..gilbert.len() {
                events += black_box(gilbert.scenario(i)).events.len();
            }
            events
        })
    });
    gen.finish();
}

criterion_group!(benches, bench_impairments);
criterion_main!(benches);
