//! # pr-sim — deterministic packet-level discrete-event simulator
//!
//! The stand-in for the Java simulator the paper's §6 evaluation used.
//! Two execution engines serve the two kinds of experiments:
//!
//! * **stretch** (topological) experiments use the synchronous walker
//!   in `pr-core` — timing is irrelevant to path-cost ratios;
//! * **loss** (temporal) experiments — §1's OC-192 arithmetic, link
//!   flapping (§7), detection-delay sensitivity — need queues, delays
//!   and failure timing, which is what this crate provides.
//!
//! Design goals, in order: determinism (same seed ⇒ identical trace),
//! simplicity, and honest accounting of *why* every packet died
//! ([`SimDropReason`]). The simulator is generic over
//! [`TimedForwarding`], with [`Static`] adapting any steady-state
//! [`pr_core::ForwardingAgent`] (PR, FCP, LFA) and
//! [`ReconvergingIgp`] modelling the convergence transient.
//!
//! ## Example
//!
//! ```
//! use pr_sim::{SimConfig, SimTime, Simulator, Static};
//! use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
//! use pr_embedding::{CellularEmbedding, RotationSystem};
//! use pr_graph::{generators, NodeId};
//!
//! let g = generators::ring(5, 1);
//! let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
//! let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
//! let agent = Static(net.agent(&g));
//!
//! let mut sim = Simulator::new(&g, &agent, SimConfig::default(), 7);
//! sim.add_cbr_flow(NodeId(0), NodeId(2), 1024, 1_000_000, SimTime::ZERO, SimTime::from_millis(10));
//! sim.schedule_link_down(g.find_link(NodeId(0), NodeId(1)).unwrap(), SimTime::from_micros(5500));
//! let metrics = sim.run_until(SimTime::from_secs(1));
//! assert_eq!(metrics.injected, 11);
//! assert_eq!(metrics.delivered, 11); // PR reroutes instantly at detection
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod driver;
mod event;
mod metrics;
mod sampling;
pub mod scenarios;
mod simulator;
mod time;
mod timed;

pub use driver::{igp_for, igp_for_with, run_scenario};
pub use event::EventQueue;
pub use metrics::{DemandTally, Metrics, SimDropReason};
pub use sampling::{TallySample, TallySeries};
pub use simulator::{SimConfig, Simulator};
pub use time::{transmission_nanos, SimTime};
pub use timed::{ReconvergingIgp, Static, TimedForwarding};
