//! Canned scenarios used by the experiment harness.
//!
//! The headline one reproduces §1's motivating arithmetic: *"If, for
//! instance, a heavily loaded OC-192 link is down for a second, more
//! than a quarter of a million packets could be lost, given an average
//! packet size of 1 kB."* — and then shows what PR does to that number
//! (experiment E10).

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::CellularEmbedding;
use pr_graph::{Graph, LinkSet, NodeId};

use crate::{Metrics, ReconvergingIgp, SimConfig, SimTime, Simulator, Static};

/// OC-192 line rate in bits per second.
pub const OC192_BPS: u64 = 9_953_280_000;

/// Parameters of the §1 outage scenario.
#[derive(Debug, Clone)]
pub struct Oc192Scenario {
    /// Offered load as a fraction of OC-192 line rate.
    pub load: f64,
    /// Packet size in bytes (the paper's "average packet size of 1 kB").
    pub packet_bytes: u32,
    /// When the link fails.
    pub fail_at: SimTime,
    /// How long the link stays down (the paper's "down for a second").
    pub down_for: SimTime,
    /// IGP convergence time after the failure (detection + flooding +
    /// SPF + FIB install).
    pub igp_convergence: SimTime,
    /// PR's local failure-detection delay (e.g. loss of light /
    /// BFD-fast).
    pub pr_detection: SimTime,
    /// Total traffic duration.
    pub duration: SimTime,
}

impl Default for Oc192Scenario {
    fn default() -> Self {
        Oc192Scenario {
            load: 0.25,
            packet_bytes: 1024,
            fail_at: SimTime::from_millis(500),
            down_for: SimTime::from_secs(1),
            igp_convergence: SimTime::from_secs(1),
            pr_detection: SimTime::from_millis(1),
            duration: SimTime::from_secs(3),
        }
    }
}

/// Results of one scheme's run through the outage.
#[derive(Debug, Clone)]
pub struct OutageResult {
    /// Scheme label.
    pub scheme: &'static str,
    /// Full metrics.
    pub metrics: Metrics,
}

/// The 4-node diamond used by the outage scenario: src `S` reaches
/// `D` over a short primary path through `P` and a longer backup
/// through `B` — the minimal topology where local reroute and global
/// reconvergence genuinely differ.
pub fn diamond() -> (Graph, NodeId, NodeId, pr_graph::LinkId) {
    let mut g = Graph::new();
    let s = g.add_node("S");
    let p = g.add_node("P");
    let b = g.add_node("B");
    let d = g.add_node("D");
    g.add_link(s, p, 1).unwrap();
    let primary = g.add_link(p, d, 1).unwrap();
    g.add_link(s, b, 2).unwrap();
    g.add_link(b, d, 2).unwrap();
    (g, s, d, primary)
}

/// Runs the §1 OC-192 outage under PR (basic mode suffices: single
/// failure) and under a reconverging IGP, returning both loss counts.
pub fn run_oc192(scenario: &Oc192Scenario, seed: u64) -> Vec<OutageResult> {
    let (g, src, dst, primary) = diamond();
    let interval_ns =
        (f64::from(scenario.packet_bytes) * 8.0 * 1e9 / (scenario.load * OC192_BPS as f64)) as u64;

    let mut results = Vec::new();

    // Packet Re-cycling: deflects locally as soon as the failure is
    // detected at the adjacent router.
    {
        let emb = CellularEmbedding::new(&g, pr_embedding::heuristics::best_effort(&g, seed))
            .expect("diamond is connected");
        let net = PrNetwork::compile(&g, emb, PrMode::Basic, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let config = SimConfig {
            bandwidth_bps: OC192_BPS,
            detection_delay_ns: scenario.pr_detection.as_nanos(),
            queue_capacity: 1024,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&g, &agent, config, seed);
        sim.add_cbr_flow(
            src,
            dst,
            scenario.packet_bytes,
            interval_ns,
            SimTime::ZERO,
            scenario.duration,
        );
        sim.schedule_link_down(primary, scenario.fail_at);
        sim.schedule_link_up(primary, scenario.fail_at.after(scenario.down_for.as_nanos()));
        let metrics = sim.run_until(scenario.duration.after(1_000_000_000)).clone();
        results.push(OutageResult { scheme: "pr", metrics });
    }

    // Reconverging IGP: blackholes until convergence completes.
    {
        let failed = LinkSet::from_links(g.link_count(), [primary]);
        let converged_at = scenario.fail_at.after(scenario.igp_convergence.as_nanos());
        let igp = ReconvergingIgp::new(&g, &failed, converged_at);
        let config =
            SimConfig { bandwidth_bps: OC192_BPS, queue_capacity: 1024, ..SimConfig::default() };
        let mut sim = Simulator::new(&g, &igp, config, seed);
        sim.add_cbr_flow(
            src,
            dst,
            scenario.packet_bytes,
            interval_ns,
            SimTime::ZERO,
            scenario.duration,
        );
        sim.schedule_link_down(primary, scenario.fail_at);
        // Keep the stale tables pointing into the failure for the whole
        // convergence window even though the link physically recovers
        // later: recovery after 1 s is irrelevant to the IGP that has
        // already reconverged away from it.
        sim.schedule_link_up(primary, scenario.fail_at.after(scenario.down_for.as_nanos()));
        let metrics = sim.run_until(scenario.duration.after(1_000_000_000)).clone();
        results.push(OutageResult { scheme: "reconvergence", metrics });
    }

    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_quarter_million_lost() {
        // At 25% load, 1 kB packets: 1 s of blackhole ≈ 0.25 × OC-192 /
        // 8192 bits ≈ 304k packets — "more than a quarter of a
        // million", as §1 says. Run a scaled-down-duration version in
        // tests (the bench binary runs the full second).
        let scenario = Oc192Scenario {
            down_for: SimTime::from_millis(100),
            igp_convergence: SimTime::from_millis(100),
            duration: SimTime::from_millis(800),
            ..Oc192Scenario::default()
        };
        let results = run_oc192(&scenario, 42);
        let pr = &results[0];
        let igp = &results[1];
        assert_eq!(pr.scheme, "pr");
        assert_eq!(igp.scheme, "reconvergence");

        // 100 ms blackhole at ~304 kpps ≈ 30k lost for the IGP.
        let igp_lost = igp.metrics.total_dropped();
        assert!(
            (25_000..=35_000).contains(&igp_lost),
            "IGP lost {igp_lost}, expected ≈30k in a 100 ms window"
        );
        // PR loses only the ~1 ms detection window (~300 packets).
        let pr_lost = pr.metrics.total_dropped();
        assert!(pr_lost < 1_000, "PR lost {pr_lost}, expected < 1k");
        // And PR's delivery ratio stays near 1.
        assert!(pr.metrics.delivery_ratio() > 0.995);
    }

    #[test]
    fn diamond_is_wired_correctly() {
        let (g, s, d, primary) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.link_count(), 4);
        let (a, b) = g.endpoints(primary);
        assert_eq!(g.node_name(a), "P");
        assert_eq!(g.node_name(b), "D");
        let tree = pr_graph::SpTree::towards_all_live(&g, d);
        assert_eq!(tree.cost(s), Some(2), "primary path S-P-D costs 2");
    }
}
