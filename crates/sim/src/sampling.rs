//! Timed metrics sampling: demand tallies as piecewise-constant
//! functions of time.
//!
//! A static replay answers *"how much demand is lost under this failed
//! set"*; an impaired timeline asks the LINC question instead — *"how
//! much demand is lost **when**, as links fail, get detected, and come
//! back"*. A [`TallySeries`] samples one [`DemandTally`] per interval
//! between timeline event boundaries; every sample also records
//! whether, at that instant, PR's local detection has caught up with
//! the most recent failure and whether a reconverging IGP has, so one
//! replay per interval prices **both** schemes' loss-over-time curves:
//!
//! * before detection, traffic keeps being forwarded into dead
//!   interfaces: every affected flow's demand is lost (`evaluated +
//!   disconnected` — the §1 blackhole window);
//! * after detection, PR delivers what its cycles recover (lost =
//!   `dropped + disconnected`);
//! * after convergence, an IGP delivers everything still connected
//!   (lost = `disconnected`).
//!
//! All derived integrals fold the samples in timeline order with the
//! exact per-interval tallies, so a series is bit-identical however
//! many threads produced the rows around it.

use serde::Serialize;

use crate::metrics::DemandTally;

/// One sampled interval of an impaired timeline: the demand tally of
/// the failed set in force over `[from_ns, to_ns)`, plus the two
/// scheme clocks (detection, convergence) at `from_ns`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TallySample {
    /// Interval start (ns).
    pub from_ns: u64,
    /// Interval end (ns, exclusive).
    pub to_ns: u64,
    /// Links actually down throughout the interval.
    pub links_down: u32,
    /// `true` once PR's local detection covers every link down at
    /// `from_ns` (detection delay elapsed since the last failure).
    pub pr_detected: bool,
    /// `true` once a reconverging IGP's survivor tables cover every
    /// link down at `from_ns` (convergence lag elapsed).
    pub igp_converged: bool,
    /// The replay tally of the interval's failed set.
    pub tally: DemandTally,
}

impl TallySample {
    /// Interval length in ns.
    pub fn duration_ns(&self) -> u64 {
        self.to_ns.saturating_sub(self.from_ns)
    }

    /// Demand lost per unit time under PR during this interval:
    /// everything affected while undetected (blackhole window), the
    /// scheme's own drops plus disconnections afterwards.
    pub fn pr_lost(&self) -> f64 {
        if self.pr_detected {
            self.tally.dropped + self.tally.disconnected
        } else {
            self.tally.evaluated + self.tally.disconnected
        }
    }

    /// Demand lost per unit time under a reconverging IGP: everything
    /// affected until convergence, only true disconnections after
    /// (shortest-path recomputation delivers all connected demand).
    pub fn igp_lost(&self) -> f64 {
        if self.igp_converged {
            self.tally.disconnected
        } else {
            self.tally.evaluated + self.tally.disconnected
        }
    }

    /// PR's lost fraction of offered demand over this interval.
    pub fn pr_lost_fraction(&self) -> f64 {
        if self.tally.offered == 0.0 {
            0.0
        } else {
            self.pr_lost() / self.tally.offered
        }
    }

    /// The IGP's lost fraction of offered demand over this interval.
    pub fn igp_lost_fraction(&self) -> f64 {
        if self.tally.offered == 0.0 {
            0.0
        } else {
            self.igp_lost() / self.tally.offered
        }
    }
}

/// A loss-over-time curve: consecutive [`TallySample`]s partitioning
/// one scenario's demand-active window, with time-integral accessors.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TallySeries {
    /// The samples, in timeline order (contiguous, non-overlapping).
    pub samples: Vec<TallySample>,
}

impl TallySeries {
    /// Total sampled time in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.iter().map(|s| s.duration_ns() as f64 * 1e-9).sum()
    }

    /// `∫ offered dt` — demand-seconds offered over the window.
    pub fn offered_demand_seconds(&self) -> f64 {
        self.samples.iter().map(|s| s.tally.offered * (s.duration_ns() as f64 * 1e-9)).sum()
    }

    /// `∫ lost_PR dt` — demand-seconds PR loses over the window.
    pub fn pr_demand_seconds_lost(&self) -> f64 {
        self.samples.iter().map(|s| s.pr_lost() * (s.duration_ns() as f64 * 1e-9)).sum()
    }

    /// `∫ lost_IGP dt` — demand-seconds a reconverging IGP loses.
    pub fn igp_demand_seconds_lost(&self) -> f64 {
        self.samples.iter().map(|s| s.igp_lost() * (s.duration_ns() as f64 * 1e-9)).sum()
    }

    /// Time-weighted mean of PR's lost fraction (0.0 on an empty
    /// window).
    pub fn pr_loss_over_time(&self) -> f64 {
        let offered = self.offered_demand_seconds();
        if offered == 0.0 {
            0.0
        } else {
            self.pr_demand_seconds_lost() / offered
        }
    }

    /// Time-weighted mean of the IGP's lost fraction.
    pub fn igp_loss_over_time(&self) -> f64 {
        let offered = self.offered_demand_seconds();
        if offered == 0.0 {
            0.0
        } else {
            self.igp_demand_seconds_lost() / offered
        }
    }

    /// The worst instantaneous PR loss fraction across samples.
    pub fn peak_pr_loss_fraction(&self) -> f64 {
        self.samples.iter().map(|s| s.pr_lost_fraction()).fold(0.0, f64::max)
    }

    /// Time-weighted demand-weighted mean stretch of delivered affected
    /// demand (`None` when no interval delivered affected demand) —
    /// the stretch-over-time curve's integral.
    pub fn mean_weighted_stretch_over_time(&self) -> Option<f64> {
        let (mut num, mut den) = (0.0, 0.0);
        for s in &self.samples {
            let dt = s.duration_ns() as f64 * 1e-9;
            num += s.tally.stretch_weighted_sum * dt;
            den += s.tally.stretch_weight * dt;
        }
        if den == 0.0 {
            None
        } else {
            Some(num / den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(offered: f64, evaluated: f64, delivered_of_evaluated: f64) -> DemandTally {
        DemandTally {
            flows: 4,
            offered,
            delivered: offered - (evaluated - delivered_of_evaluated),
            evaluated,
            evaluated_delivered: delivered_of_evaluated,
            dropped: evaluated - delivered_of_evaluated,
            stretch_weighted_sum: delivered_of_evaluated * 1.5,
            stretch_weight: delivered_of_evaluated,
            ..Default::default()
        }
    }

    #[test]
    fn scheme_clocks_split_the_same_tally() {
        let t = tally(10.0, 4.0, 3.0);
        let undetected = TallySample {
            from_ns: 0,
            to_ns: 1_000_000,
            links_down: 1,
            pr_detected: false,
            igp_converged: false,
            tally: t,
        };
        // Blackhole window: all affected demand is lost, both schemes.
        assert_eq!(undetected.pr_lost(), 4.0);
        assert_eq!(undetected.igp_lost(), 4.0);
        let detected = TallySample { pr_detected: true, ..undetected.clone() };
        // After detection PR loses only what its cycles cannot recover.
        assert_eq!(detected.pr_lost(), 1.0);
        assert_eq!(detected.igp_lost(), 4.0, "the IGP is still reconverging");
        let converged = TallySample { igp_converged: true, ..detected.clone() };
        assert_eq!(converged.igp_lost(), 0.0, "nothing disconnected here");
        assert_eq!(converged.pr_lost_fraction(), 0.1);
    }

    #[test]
    fn integrals_weight_by_interval_duration() {
        let clean = TallySample {
            from_ns: 0,
            to_ns: 900_000_000,
            links_down: 0,
            pr_detected: true,
            igp_converged: true,
            tally: tally(10.0, 0.0, 0.0),
        };
        let broken = TallySample {
            from_ns: 900_000_000,
            to_ns: 1_000_000_000,
            links_down: 1,
            pr_detected: false,
            igp_converged: false,
            tally: tally(10.0, 5.0, 4.0),
        };
        let series = TallySeries { samples: vec![clean, broken] };
        assert!((series.duration_s() - 1.0).abs() < 1e-12);
        assert!((series.offered_demand_seconds() - 10.0).abs() < 1e-12);
        // 5 units lost for 0.1s.
        assert!((series.pr_demand_seconds_lost() - 0.5).abs() < 1e-12);
        assert!((series.pr_loss_over_time() - 0.05).abs() < 1e-12);
        assert_eq!(series.peak_pr_loss_fraction(), 0.5);
        // Only the broken interval carries stretch weight.
        let stretch = series.mean_weighted_stretch_over_time().unwrap();
        assert!((stretch - 1.5).abs() < 1e-12, "{stretch}");
    }

    #[test]
    fn empty_series_defaults() {
        let s = TallySeries::default();
        assert_eq!(s.pr_loss_over_time(), 0.0);
        assert_eq!(s.igp_loss_over_time(), 0.0);
        assert_eq!(s.peak_pr_loss_fraction(), 0.0);
        assert_eq!(s.mean_weighted_stretch_over_time(), None);
    }
}
