//! The scenario driver: replaying a [`TemporalScenario`] from
//! `pr-scenarios` through the simulator.
//!
//! This is the bridge the parallel temporal sweeps stand on: a
//! scenario is pure data (events + flow + timing knobs), the agent is
//! compiled once per sweep, and this module turns `(scenario, agent,
//! seed)` into [`Metrics`] with no hidden state — so a sweep engine
//! can replay scenario `i` on any worker thread and get the bytes a
//! serial loop would have produced.

use pr_graph::{Graph, LinkSet};
use pr_scenarios::TemporalScenario;

use crate::{Metrics, ReconvergingIgp, SimConfig, SimTime, Simulator, TimedForwarding};

/// Replays `scenario` against `agent` and returns the run's metrics.
///
/// `config` supplies the physical-layer parameters (bandwidth, delays,
/// queue sizes); the scenario's own control-plane timing
/// (`detection_delay_ns`, `up_holddown_ns`) overrides the
/// corresponding `config` fields, because those knobs are part of what
/// a temporal family varies. `seed` drives the simulator's RNG — pass
/// [`pr_scenarios::TemporalFamily::seed_for`]`(base, index)` so
/// parallel sweeps stay deterministic.
pub fn run_scenario<T: TimedForwarding>(
    graph: &Graph,
    agent: &T,
    scenario: &TemporalScenario,
    config: &SimConfig,
    seed: u64,
) -> Metrics {
    let config = SimConfig {
        detection_delay_ns: scenario.detection_delay_ns,
        up_holddown_ns: scenario.up_holddown_ns,
        ..config.clone()
    };
    let mut sim = Simulator::new(graph, agent, config, seed);
    let f = &scenario.flow;
    sim.add_cbr_flow(
        f.src,
        f.dst,
        f.packet_bytes,
        f.interval_ns,
        SimTime(f.start_ns),
        SimTime(f.end_ns),
    );
    for e in &scenario.events {
        if e.up {
            sim.schedule_link_up(e.link, SimTime(e.at_ns));
        } else {
            sim.schedule_link_down(e.link, SimTime(e.at_ns));
        }
    }
    sim.run_until(SimTime(scenario.horizon_ns)).clone()
}

/// Builds the reconverging-IGP baseline for `scenario` from its
/// steady-state failure view, sharing caller-hoisted pre-failure
/// tables (`stale`) — those are failure-invariant, so a sweep computes
/// them once and each scenario pays one `Arc` bump, never an all-pairs
/// copy.
pub fn igp_for(
    graph: &Graph,
    scenario: &TemporalScenario,
    stale: &std::sync::Arc<pr_graph::AllPairs>,
) -> ReconvergingIgp {
    igp_for_with(graph, scenario, stale, &mut pr_graph::SpScratch::new())
}

/// [`igp_for`] with a caller-held Dijkstra arena: the post-failure
/// tables are incrementally repaired from `stale` (bit-identical to a
/// full recompute), so a temporal sweep worker builds one IGP per
/// scenario at affected-cone cost with zero arena allocations.
///
/// `stale` must be the failure-free base map (as sweeps hoist it) —
/// the repair precondition of [`pr_graph::SpTree::repair_from`].
pub fn igp_for_with(
    graph: &Graph,
    scenario: &TemporalScenario,
    stale: &std::sync::Arc<pr_graph::AllPairs>,
    scratch: &mut pr_graph::SpScratch,
) -> ReconvergingIgp {
    let failed = LinkSet::from_links(graph.link_count(), scenario.igp_failed.iter().copied());
    ReconvergingIgp::with_stale_repaired(
        std::sync::Arc::clone(stale),
        graph,
        &failed,
        SimTime(scenario.igp_converged_at_ns),
        scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Static;
    use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
    use pr_embedding::{CellularEmbedding, RotationSystem};
    use pr_graph::{generators, AllPairs};
    use pr_scenarios::{OutageParams, OutageSweep, TemporalFamily};

    #[test]
    fn outage_scenario_replays_through_the_driver() {
        let g = generators::ring(5, 1);
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let fam = OutageSweep::new(&g, OutageParams::default());
        let sc = fam.scenario(0);
        let config = SimConfig::default();
        let seed = fam.seed_for(2010, 0);

        let pr = run_scenario(&g, &agent, &sc, &config, seed);
        assert!(pr.injected > 0);
        // PR loses at most the detection window (~1 ms at 10 kpps ≈ 10
        // packets + in-flight).
        assert!(pr.delivery_ratio() > 0.99, "PR delivered {}", pr.delivery_ratio());

        let stale = std::sync::Arc::new(AllPairs::compute_all_live(&g));
        let igp = igp_for(&g, &sc, &stale);
        let m = run_scenario(&g, &igp, &sc, &config, seed);
        assert_eq!(m.injected, pr.injected, "same CBR schedule");
        // The IGP blackholes for the whole convergence window: 200 ms
        // at 10 kpps ≈ 2000 packets.
        assert!(m.total_dropped() > 1_000, "IGP dropped only {}", m.total_dropped());
        assert!(m.total_dropped() > pr.total_dropped() * 10);
    }

    #[test]
    fn driver_is_deterministic_in_seed() {
        let g = generators::ring(4, 1);
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let fam = OutageSweep::new(&g, OutageParams::default());
        let sc = fam.scenario(1);
        let config = SimConfig::default();
        let a = run_scenario(&g, &agent, &sc, &config, 7);
        let b = run_scenario(&g, &agent, &sc, &config, 7);
        assert_eq!(a, b, "identical scenario + seed must replay identically");
    }
}
