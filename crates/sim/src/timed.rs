//! Time-aware forwarding: how schemes behave *while* routing state is
//! in flux.
//!
//! The stretch experiments (walker-based) compare schemes in their
//! steady state; the loss experiments (E10) compare them **during the
//! failure transient**, where the differences the paper's §1
//! motivates live. [`TimedForwarding`] adds the clock to the decision
//! function; two implementations cover the schemes whose transient
//! behaviour differs from their steady state:
//!
//! * [`Static`] — wraps any [`ForwardingAgent`]: the scheme reacts to
//!   the failure information it is given at once (PR, FCP, LFA).
//! * [`ReconvergingIgp`] — a link-state IGP: routes on the *stale*
//!   shortest paths until `converged_at`, then on the survivor paths.
//!   In between, packets aimed at the failed link are lost — the §1
//!   quarter-million-packets story.

use std::sync::Arc;

use pr_core::{DropReason, ForwardDecision, ForwardingAgent};
use pr_graph::{AllPairs, Dart, Graph, LinkSet, NodeId, SpScratch};

use crate::SimTime;

/// A forwarding decision function that may also depend on the clock.
pub trait TimedForwarding {
    /// Per-packet header state threaded between hops.
    type State: Clone + Default + std::fmt::Debug;

    /// Scheme label for reports.
    fn label(&self) -> &'static str;

    /// Decide at time `now`. `visible_failed` is the failure set the
    /// control plane has *detected* (the simulator applies the
    /// detection delay); whether the chosen egress is physically up is
    /// the simulator's business, not the agent's.
    fn decide_at(
        &self,
        now: SimTime,
        at: NodeId,
        ingress: Option<Dart>,
        dest: NodeId,
        state: &mut Self::State,
        visible_failed: &LinkSet,
    ) -> ForwardDecision;

    /// Header bits currently occupied (overhead accounting).
    fn header_bits(&self, state: &Self::State) -> usize;
}

/// Adapter: any steady-state [`ForwardingAgent`] is a (time-ignoring)
/// [`TimedForwarding`].
#[derive(Debug, Clone, Copy)]
pub struct Static<A>(pub A);

impl<A: ForwardingAgent> TimedForwarding for Static<A> {
    type State = A::State;

    fn label(&self) -> &'static str {
        self.0.label()
    }

    fn decide_at(
        &self,
        _now: SimTime,
        at: NodeId,
        ingress: Option<Dart>,
        dest: NodeId,
        state: &mut Self::State,
        visible_failed: &LinkSet,
    ) -> ForwardDecision {
        self.0.decide(at, ingress, dest, state, visible_failed)
    }

    fn header_bits(&self, state: &Self::State) -> usize {
        self.0.header_bits(state)
    }
}

/// A reconverging link-state IGP (OSPF/IS-IS-like) for the loss
/// experiments: before `converged_at` it forwards on the pre-failure
/// shortest paths — straight into the failure — and afterwards on the
/// survivor shortest paths.
#[derive(Debug, Clone)]
pub struct ReconvergingIgp {
    /// Pre-failure tables, failure-invariant — shared (`Arc`) so a
    /// sweep over many scenarios hoists them once and each scenario's
    /// agent costs one pointer copy, not an all-pairs copy.
    stale: Arc<AllPairs>,
    converged: AllPairs,
    converged_at: SimTime,
}

impl ReconvergingIgp {
    /// Builds the two routing states around a failure event: `failed`
    /// is the post-failure link set; `converged_at` is when the new
    /// tables take effect network-wide (failure time + detection +
    /// flooding + SPF + FIB install, collapsed into one number as in
    /// the paper's reconvergence discussion).
    pub fn new(graph: &Graph, failed: &LinkSet, converged_at: SimTime) -> ReconvergingIgp {
        Self::with_stale(
            Arc::new(AllPairs::compute(graph, &LinkSet::empty(graph.link_count()))),
            graph,
            failed,
            converged_at,
        )
    }

    /// [`ReconvergingIgp::new`] with caller-supplied pre-failure
    /// tables. The stale tables are failure-invariant, so a sweep over
    /// many scenarios computes them once and shares them here at one
    /// `Arc` bump per scenario, instead of re-running (or copying)
    /// all-pairs Dijkstra each time.
    ///
    /// The converged tables are recomputed from scratch, so `stale`
    /// may be *any* routing state (e.g. tables that had already
    /// converged around an earlier, different failure). When `stale`
    /// is the failure-free map — the common sweep case — prefer
    /// [`ReconvergingIgp::with_stale_repaired`], which derives the
    /// converged tables by incremental repair instead.
    pub fn with_stale(
        stale: Arc<AllPairs>,
        graph: &Graph,
        failed: &LinkSet,
        converged_at: SimTime,
    ) -> ReconvergingIgp {
        ReconvergingIgp { converged: AllPairs::compute(graph, failed), stale, converged_at }
    }

    /// [`ReconvergingIgp::with_stale`] with a caller-held Dijkstra
    /// arena: the converged (post-failure) tables are produced by
    /// **incremental repair** of the stale trees — bit-identical to
    /// the full `AllPairs::compute`, but touching only the cones the
    /// failure actually perturbs. Sweep workers hold one scratch and
    /// build thousands of scenarios' IGPs through it.
    ///
    /// **Precondition** (inherited from [`pr_graph::SpTree::repair_from`]):
    /// `stale` must have been computed over a *subset* of `failed` —
    /// in practice the failure-free base map. For stale tables that
    /// already routed around other failures, use
    /// [`ReconvergingIgp::with_stale`], which recomputes from scratch.
    pub fn with_stale_repaired(
        stale: Arc<AllPairs>,
        graph: &Graph,
        failed: &LinkSet,
        converged_at: SimTime,
        scratch: &mut SpScratch,
    ) -> ReconvergingIgp {
        let converged = stale.repair_from(graph, failed, scratch);
        ReconvergingIgp { stale, converged, converged_at }
    }

    /// The instant the survivor tables take effect.
    pub fn converged_at(&self) -> SimTime {
        self.converged_at
    }
}

impl TimedForwarding for ReconvergingIgp {
    type State = ();

    fn label(&self) -> &'static str {
        "reconverging-igp"
    }

    fn decide_at(
        &self,
        now: SimTime,
        at: NodeId,
        _ingress: Option<Dart>,
        dest: NodeId,
        _state: &mut (),
        _visible_failed: &LinkSet,
    ) -> ForwardDecision {
        let tables = if now < self.converged_at { &self.stale } else { &self.converged };
        match tables.towards(dest).next_dart(at) {
            // Note: before convergence this may point into the failed
            // link; the simulator will count the loss.
            Some(out) => ForwardDecision::Forward(out),
            None => ForwardDecision::Drop(DropReason::Unreachable),
        }
    }

    fn header_bits(&self, _state: &()) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_graph::generators;

    #[test]
    fn static_adapter_passes_through() {
        use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
        use pr_embedding::{CellularEmbedding, RotationSystem};
        let g = generators::ring(5, 1);
        let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
        let net =
            PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let wrapped = Static(net.agent(&g));
        assert_eq!(wrapped.label(), "pr-dd");
        let none = LinkSet::empty(g.link_count());
        let mut state = Default::default();
        let d = wrapped.decide_at(SimTime(123), NodeId(2), None, NodeId(0), &mut state, &none);
        assert!(matches!(d, ForwardDecision::Forward(_)));
    }

    #[test]
    fn igp_switches_tables_at_convergence() {
        let g = generators::ring(5, 1);
        let direct = g.find_link(NodeId(1), NodeId(0)).unwrap();
        let failed = LinkSet::from_links(g.link_count(), [direct]);
        let igp = ReconvergingIgp::new(&g, &failed, SimTime::from_millis(500));

        let before =
            igp.decide_at(SimTime::from_millis(100), NodeId(1), None, NodeId(0), &mut (), &failed);
        // Stale tables still point into the failed link.
        match before {
            ForwardDecision::Forward(d) => assert_eq!(d.link(), direct),
            other => panic!("expected stale forward, got {other:?}"),
        }

        let after =
            igp.decide_at(SimTime::from_millis(500), NodeId(1), None, NodeId(0), &mut (), &failed);
        match after {
            ForwardDecision::Forward(d) => {
                assert_ne!(d.link(), direct, "converged tables avoid the failure")
            }
            other => panic!("expected converged forward, got {other:?}"),
        }
    }

    #[test]
    fn igp_detects_unreachability_after_convergence() {
        let g = generators::ring(4, 1);
        let l01 = g.find_link(NodeId(0), NodeId(1)).unwrap();
        let l30 = g.find_link(NodeId(3), NodeId(0)).unwrap();
        let failed = LinkSet::from_links(g.link_count(), [l01, l30]);
        let igp = ReconvergingIgp::new(&g, &failed, SimTime::ZERO);
        let d = igp.decide_at(SimTime(1), NodeId(2), None, NodeId(0), &mut (), &failed);
        assert_eq!(d, ForwardDecision::Drop(DropReason::Unreachable));
    }
}
