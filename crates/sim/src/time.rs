//! Simulation time: integer nanoseconds.
//!
//! Integer time keeps the event queue totally ordered and replays
//! bit-identically across platforms — float time accumulates rounding
//! differences that break deterministic regression tests.

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Builds from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Builds from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in nanoseconds.
    pub fn after(self, nanos: u64) -> SimTime {
        SimTime(self.0.saturating_add(nanos))
    }
}

impl std::ops::Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        self.after(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Transmission (serialization) time of `bytes` at `bits_per_sec`, in
/// nanoseconds, rounded up so a packet never finishes early.
pub fn transmission_nanos(bytes: u32, bits_per_sec: u64) -> u64 {
    let bits = u128::from(bytes) * 8;
    let nanos = (bits * 1_000_000_000).div_ceil(u128::from(bits_per_sec.max(1)));
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime(1_000_000_000));
        assert_eq!(SimTime::from_millis(1500), SimTime(1_500_000_000));
        assert_eq!(SimTime::from_micros(7), SimTime(7_000));
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_millis(1);
        let b = a + 500;
        assert!(b > a);
        assert_eq!(b.as_nanos(), 1_000_500);
        assert_eq!(SimTime(u64::MAX).after(10), SimTime(u64::MAX), "saturates");
    }

    #[test]
    fn oc192_serialization_time() {
        // A 1 kB packet on OC-192 (9.953 Gb/s) serialises in ~823 ns.
        let t = transmission_nanos(1024, 9_953_000_000);
        assert!((820..=830).contains(&t), "got {t}");
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bps = 8/3 s: must round up to the next ns.
        let t = transmission_nanos(1, 3);
        assert_eq!(t, 2_666_666_667);
        assert_eq!(transmission_nanos(0, 1_000), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250000s");
    }
}
