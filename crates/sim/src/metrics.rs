//! Run metrics: what happened to every packet.

use serde::{Deserialize, Serialize};

use crate::SimTime;
use pr_core::DropReason;

/// Why the simulator discarded a packet (superset of the agent-level
/// [`DropReason`]: the simulator adds physical causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimDropReason {
    /// The forwarding agent decided to drop (with its protocol-level
    /// reason).
    Agent(DropReason),
    /// The packet was serialised onto a link that failed before it
    /// arrived (lost in flight — fibre-cut semantics).
    LostInFlight,
    /// The chosen egress link was down at transmission time and the
    /// agent did not know (detection delay window) — the §1 loss that
    /// motivates fast reroute.
    InterfaceDown,
    /// The egress queue was full (congestion loss).
    QueueOverflow,
    /// The per-packet hop budget ran out (covers livelocks inside the
    /// timed simulator, which has no global loop detector).
    HopBudget,
}

impl std::fmt::Display for SimDropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimDropReason::Agent(r) => write!(f, "agent: {r}"),
            SimDropReason::LostInFlight => f.write_str("lost in flight on failed link"),
            SimDropReason::InterfaceDown => f.write_str("egress interface down"),
            SimDropReason::QueueOverflow => f.write_str("egress queue overflow"),
            SimDropReason::HopBudget => f.write_str("hop budget exhausted"),
        }
    }
}

/// Aggregated outcome of a simulation run.
///
/// `PartialEq`/`Eq` compare every counter exactly — the determinism
/// tests assert parallel temporal sweeps equal their serial reference
/// bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Packets handed to the network by traffic sources.
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Drops, bucketed by cause.
    pub drops: std::collections::BTreeMap<String, u64>,
    /// Sum of end-to-end latencies of delivered packets (ns).
    pub latency_sum_ns: u128,
    /// Worst delivered latency (ns).
    pub latency_max_ns: u64,
    /// Total hops traversed by delivered packets.
    pub hops_sum: u64,
    /// Worst hop count among delivered packets.
    pub hops_max: u32,
}

impl Metrics {
    /// Records a delivery.
    pub(crate) fn record_delivery(&mut self, sent: SimTime, now: SimTime, hops: u32) {
        self.delivered += 1;
        let lat = now.as_nanos().saturating_sub(sent.as_nanos());
        self.latency_sum_ns += u128::from(lat);
        self.latency_max_ns = self.latency_max_ns.max(lat);
        self.hops_sum += u64::from(hops);
        self.hops_max = self.hops_max.max(hops);
    }

    /// Records a drop.
    pub(crate) fn record_drop(&mut self, reason: SimDropReason) {
        *self.drops.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Total packets dropped, all causes.
    pub fn total_dropped(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Delivered fraction of injected packets (1.0 when nothing was
    /// injected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Mean end-to-end latency of delivered packets, in ns.
    pub fn mean_latency_ns(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.latency_sum_ns as f64 / self.delivered as f64)
        }
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.hops_sum as f64 / self.delivered as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut m = Metrics { injected: 3, ..Default::default() };
        m.record_delivery(SimTime(100), SimTime(600), 3);
        m.record_delivery(SimTime(200), SimTime(400), 5);
        m.record_drop(SimDropReason::InterfaceDown);
        assert_eq!(m.delivered, 2);
        assert_eq!(m.total_dropped(), 1);
        assert!((m.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.mean_latency_ns(), Some(350.0));
        assert_eq!(m.latency_max_ns, 500);
        assert_eq!(m.mean_hops(), Some(4.0));
        assert_eq!(m.hops_max, 5);
    }

    #[test]
    fn empty_run_defaults() {
        let m = Metrics::default();
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.mean_latency_ns(), None);
        assert_eq!(m.mean_hops(), None);
        assert_eq!(m.total_dropped(), 0);
    }

    #[test]
    fn drop_reasons_are_bucketed_by_name() {
        let mut m = Metrics::default();
        m.record_drop(SimDropReason::QueueOverflow);
        m.record_drop(SimDropReason::QueueOverflow);
        m.record_drop(SimDropReason::Agent(DropReason::NoRoute));
        assert_eq!(m.drops["egress queue overflow"], 2);
        assert_eq!(m.drops["agent: no route"], 1);
    }
}
