//! Run metrics: what happened to every packet.

use serde::{Deserialize, Serialize};

use crate::SimTime;
use pr_core::DropReason;

/// Why the simulator discarded a packet (superset of the agent-level
/// [`DropReason`]: the simulator adds physical causes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimDropReason {
    /// The forwarding agent decided to drop (with its protocol-level
    /// reason).
    Agent(DropReason),
    /// The packet was serialised onto a link that failed before it
    /// arrived (lost in flight — fibre-cut semantics).
    LostInFlight,
    /// The chosen egress link was down at transmission time and the
    /// agent did not know (detection delay window) — the §1 loss that
    /// motivates fast reroute.
    InterfaceDown,
    /// The egress queue was full (congestion loss).
    QueueOverflow,
    /// The per-packet hop budget ran out (covers livelocks inside the
    /// timed simulator, which has no global loop detector).
    HopBudget,
}

impl std::fmt::Display for SimDropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimDropReason::Agent(r) => write!(f, "agent: {r}"),
            SimDropReason::LostInFlight => f.write_str("lost in flight on failed link"),
            SimDropReason::InterfaceDown => f.write_str("egress interface down"),
            SimDropReason::QueueOverflow => f.write_str("egress queue overflow"),
            SimDropReason::HopBudget => f.write_str("hop budget exhausted"),
        }
    }
}

/// Aggregated outcome of a simulation run.
///
/// `PartialEq`/`Eq` compare every counter exactly — the determinism
/// tests assert parallel temporal sweeps equal their serial reference
/// bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Packets handed to the network by traffic sources.
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Drops, bucketed by cause.
    pub drops: std::collections::BTreeMap<String, u64>,
    /// Sum of end-to-end latencies of delivered packets (ns).
    pub latency_sum_ns: u128,
    /// Worst delivered latency (ns).
    pub latency_max_ns: u64,
    /// Total hops traversed by delivered packets.
    pub hops_sum: u64,
    /// Worst hop count among delivered packets.
    pub hops_max: u32,
}

impl Metrics {
    /// Records a delivery.
    pub(crate) fn record_delivery(&mut self, sent: SimTime, now: SimTime, hops: u32) {
        self.delivered += 1;
        let lat = now.as_nanos().saturating_sub(sent.as_nanos());
        self.latency_sum_ns += u128::from(lat);
        self.latency_max_ns = self.latency_max_ns.max(lat);
        self.hops_sum += u64::from(hops);
        self.hops_max = self.hops_max.max(hops);
    }

    /// Records a drop.
    pub(crate) fn record_drop(&mut self, reason: SimDropReason) {
        *self.drops.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Total packets dropped, all causes.
    pub fn total_dropped(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Delivered fraction of injected packets (1.0 when nothing was
    /// injected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Mean end-to-end latency of delivered packets, in ns.
    pub fn mean_latency_ns(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.latency_sum_ns as f64 / self.delivered as f64)
        }
    }

    /// Mean hop count of delivered packets.
    pub fn mean_hops(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.hops_sum as f64 / self.delivered as f64)
        }
    }
}

/// Demand-weighted tally of flow outcomes — the flow-level analogue of
/// [`Metrics`] used by the traffic-replay subsystem (`pr-traffic`).
///
/// Where [`Metrics`] counts packets, a `DemandTally` weighs each flow
/// by its traffic-matrix demand, so a dead link carrying 40% of an
/// ISP's traffic scores 40%, not one scenario-pair among many. The
/// conditioning mirrors the coverage experiment exactly:
///
/// * **evaluated** demand = flows whose failure-free shortest path
///   crossed a failed link *and* whose endpoints stayed connected (the
///   paper's "| path" conditioning);
/// * **disconnected** demand is excluded from coverage (no scheme can
///   deliver it) but still counts as lost;
/// * unaffected flows deliver trivially and only contribute to the
///   offered/delivered totals.
///
/// Under a uniform *unit* matrix (demand exactly 1.0 per ordered
/// pair), every sum below is an integer-valued `f64`, so
/// [`DemandTally::weighted_coverage`] is bit-identical to the
/// unweighted delivered/evaluated ratio — the determinism suite
/// enforces this.
///
/// `PartialEq` compares every accumulator exactly; the parallel
/// traffic sweep must match its serial reference bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DemandTally {
    /// Flows tallied.
    pub flows: u64,
    /// Total demand offered by those flows.
    pub offered: f64,
    /// Demand that reached its destination (any path).
    pub delivered: f64,
    /// Demand of affected-and-still-connected flows (coverage
    /// denominator).
    pub evaluated: f64,
    /// Of [`DemandTally::evaluated`], the demand actually delivered
    /// (coverage numerator).
    pub evaluated_delivered: f64,
    /// Demand whose endpoints the scenario disconnected (lost, but
    /// excluded from coverage).
    pub disconnected: f64,
    /// Demand dropped although a survivor path existed (scheme
    /// failures: livelocks, TTL, …).
    pub dropped: f64,
    /// Sum of `demand × stretch` over delivered affected flows.
    pub stretch_weighted_sum: f64,
    /// Sum of `demand` over delivered affected flows (the denominator
    /// of the weighted mean stretch).
    pub stretch_weight: f64,
}

impl DemandTally {
    /// Records a flow delivered along its unaffected shortest path.
    pub fn record_clear(&mut self, demand: f64) {
        self.flows += 1;
        self.offered += demand;
        self.delivered += demand;
    }

    /// Records an affected-but-connected flow delivered over a detour
    /// with the given stretch.
    pub fn record_recovered(&mut self, demand: f64, stretch: f64) {
        self.flows += 1;
        self.offered += demand;
        self.delivered += demand;
        self.evaluated += demand;
        self.evaluated_delivered += demand;
        self.stretch_weighted_sum += demand * stretch;
        self.stretch_weight += demand;
    }

    /// Records a whole batch of clear flows from aggregated sums:
    /// `flows` flows carrying `demand` total, all delivered along
    /// unaffected shortest paths. Equal to `flows` calls of
    /// [`DemandTally::record_clear`] whenever the demand sums are
    /// exact (the grid-quantised demands of `pr-traffic`'s `FlowSet`
    /// guarantee this) — the constructor the bit-parallel dataplane
    /// feeds from its word-popcount and subtree-sum aggregates.
    pub fn record_clear_batch(&mut self, flows: u64, demand: f64) {
        self.flows += flows;
        self.offered += demand;
        self.delivered += demand;
    }

    /// Records a whole batch of disconnected flows from aggregated
    /// sums — the batch analogue of
    /// [`DemandTally::record_disconnected`], same exactness contract
    /// as [`DemandTally::record_clear_batch`].
    pub fn record_disconnected_batch(&mut self, flows: u64, demand: f64) {
        self.flows += flows;
        self.offered += demand;
        self.disconnected += demand;
    }

    /// Records a flow whose endpoints the scenario disconnected.
    pub fn record_disconnected(&mut self, demand: f64) {
        self.flows += 1;
        self.offered += demand;
        self.disconnected += demand;
    }

    /// Records an affected, still-connected flow the scheme failed to
    /// deliver.
    pub fn record_dropped(&mut self, demand: f64) {
        self.flows += 1;
        self.offered += demand;
        self.evaluated += demand;
        self.dropped += demand;
    }

    /// Demand lost, all causes (disconnection + scheme drops).
    pub fn lost(&self) -> f64 {
        self.disconnected + self.dropped
    }

    /// Traffic-weighted coverage: delivered share of the evaluated
    /// (affected, still-connected) demand. 1.0 when nothing was
    /// evaluated, matching `CoverageCell::ratio`.
    pub fn weighted_coverage(&self) -> f64 {
        if self.evaluated == 0.0 {
            1.0
        } else {
            self.evaluated_delivered / self.evaluated
        }
    }

    /// Fraction of the offered demand that was lost (0.0 when nothing
    /// was offered).
    pub fn demand_lost_fraction(&self) -> f64 {
        if self.offered == 0.0 {
            0.0
        } else {
            self.lost() / self.offered
        }
    }

    /// Demand-weighted mean stretch over delivered affected flows
    /// (`None` when no affected flow delivered).
    pub fn mean_weighted_stretch(&self) -> Option<f64> {
        if self.stretch_weight == 0.0 {
            None
        } else {
            Some(self.stretch_weighted_sum / self.stretch_weight)
        }
    }

    /// Accumulates another tally (callers must absorb in a
    /// deterministic order for bit-identical float sums).
    pub fn absorb(&mut self, other: &DemandTally) {
        self.flows += other.flows;
        self.offered += other.offered;
        self.delivered += other.delivered;
        self.evaluated += other.evaluated;
        self.evaluated_delivered += other.evaluated_delivered;
        self.disconnected += other.disconnected;
        self.dropped += other.dropped;
        self.stretch_weighted_sum += other.stretch_weighted_sum;
        self.stretch_weight += other.stretch_weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut m = Metrics { injected: 3, ..Default::default() };
        m.record_delivery(SimTime(100), SimTime(600), 3);
        m.record_delivery(SimTime(200), SimTime(400), 5);
        m.record_drop(SimDropReason::InterfaceDown);
        assert_eq!(m.delivered, 2);
        assert_eq!(m.total_dropped(), 1);
        assert!((m.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.mean_latency_ns(), Some(350.0));
        assert_eq!(m.latency_max_ns, 500);
        assert_eq!(m.mean_hops(), Some(4.0));
        assert_eq!(m.hops_max, 5);
    }

    #[test]
    fn empty_run_defaults() {
        let m = Metrics::default();
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.mean_latency_ns(), None);
        assert_eq!(m.mean_hops(), None);
        assert_eq!(m.total_dropped(), 0);
    }

    #[test]
    fn drop_reasons_are_bucketed_by_name() {
        let mut m = Metrics::default();
        m.record_drop(SimDropReason::QueueOverflow);
        m.record_drop(SimDropReason::QueueOverflow);
        m.record_drop(SimDropReason::Agent(DropReason::NoRoute));
        assert_eq!(m.drops["egress queue overflow"], 2);
        assert_eq!(m.drops["agent: no route"], 1);
    }

    #[test]
    fn demand_tally_accounting() {
        let mut t = DemandTally::default();
        t.record_clear(2.0);
        t.record_recovered(1.0, 1.5);
        t.record_recovered(3.0, 2.0);
        t.record_disconnected(0.5);
        t.record_dropped(1.5);
        assert_eq!(t.flows, 5);
        assert_eq!(t.offered, 8.0);
        assert_eq!(t.delivered, 6.0);
        assert_eq!(t.evaluated, 5.5);
        assert_eq!(t.evaluated_delivered, 4.0);
        assert_eq!(t.lost(), 2.0);
        assert!((t.weighted_coverage() - 4.0 / 5.5).abs() < 1e-12);
        assert_eq!(t.demand_lost_fraction(), 0.25);
        assert_eq!(t.mean_weighted_stretch(), Some((1.5 + 6.0) / 4.0));
    }

    #[test]
    fn demand_tally_unit_demands_stay_integral() {
        // Under a unit matrix the accumulators are exact integers, so
        // the weighted ratio equals the unweighted count ratio bitwise.
        let mut t = DemandTally::default();
        for _ in 0..7 {
            t.record_recovered(1.0, 1.0);
        }
        for _ in 0..3 {
            t.record_dropped(1.0);
        }
        let (delivered, evaluated): (u64, u64) = (7, 10);
        assert_eq!(t.weighted_coverage(), delivered as f64 / evaluated as f64);
    }

    #[test]
    fn demand_tally_batch_constructors_match_per_flow_records() {
        // On exactly-summable demands (here: halves), batch records are
        // bitwise equal to the equivalent per-flow record sequence.
        let mut per_flow = DemandTally::default();
        per_flow.record_clear(1.5);
        per_flow.record_clear(2.0);
        per_flow.record_clear(0.5);
        per_flow.record_disconnected(1.0);
        per_flow.record_disconnected(0.5);
        let mut batch = DemandTally::default();
        batch.record_clear_batch(3, 1.5 + 2.0 + 0.5);
        batch.record_disconnected_batch(2, 1.0 + 0.5);
        assert_eq!(batch, per_flow);
    }

    #[test]
    fn demand_tally_empty_defaults() {
        let t = DemandTally::default();
        assert_eq!(t.weighted_coverage(), 1.0);
        assert_eq!(t.demand_lost_fraction(), 0.0);
        assert_eq!(t.mean_weighted_stretch(), None);
        let mut sum = DemandTally::default();
        sum.absorb(&t);
        assert_eq!(sum, t);
    }
}
