//! The discrete-event packet simulator.
//!
//! Store-and-forward, per-link FIFO queues, finite buffers, link
//! serialization and propagation delays, link failure/repair events
//! with a configurable **detection delay** (the window in which the
//! data plane still believes a dead link is alive), and traffic
//! generators. Deterministic: same inputs and seed, same trace.
//!
//! Model notes (kept deliberately simple, in smoltcp's
//! simplicity-over-cleverness spirit):
//!
//! * a packet *in flight or queued* on a link when it fails is lost
//!   (fibre-cut semantics), implemented with per-link epochs;
//! * a packet forwarded onto a link that is physically down but not
//!   yet *detected* is lost at the interface — this is precisely the
//!   §1 loss window that motivates fast reroute;
//! * control-plane visibility (what agents see) lags physical state by
//!   [`SimConfig::detection_delay_ns`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pr_core::ForwardDecision;
use pr_graph::{Dart, Graph, LinkId, LinkSet, NodeId};

use crate::{transmission_nanos, EventQueue, Metrics, SimDropReason, SimTime, TimedForwarding};

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Link bandwidth in bits per second (uniform across links).
    pub bandwidth_bps: u64,
    /// Propagation delay per unit of link weight, in ns (weights are
    /// ~10 km in the shipped topologies; 50 µs ≈ 10 km of fibre).
    pub prop_delay_ns_per_weight: u64,
    /// Floor for propagation delay, in ns.
    pub min_prop_delay_ns: u64,
    /// Egress queue capacity, in packets, per link direction.
    pub queue_capacity: usize,
    /// How long after a physical failure the control plane learns of
    /// it (and symmetrically for repair).
    pub detection_delay_ns: u64,
    /// Flap dampening (§7 of the paper): a recovered link is not made
    /// visible to the control plane until it has stayed up this long,
    /// "to ensure that packets that encountered the link in its failed
    /// state do not encounter it again in its normal state while cycle
    /// following".
    pub up_holddown_ns: u64,
    /// Per-packet hop budget (kills livelocks inside the timed
    /// simulator).
    pub hop_budget: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth_bps: 10_000_000_000,
            prop_delay_ns_per_weight: 50_000,
            min_prop_delay_ns: 1_000,
            queue_capacity: 64,
            detection_delay_ns: 0,
            up_holddown_ns: 0,
            hop_budget: 255,
        }
    }
}

/// A packet in the simulator.
#[derive(Debug, Clone)]
struct Packet<S> {
    dst: NodeId,
    size: u32,
    sent: SimTime,
    hops: u32,
    state: S,
}

/// Traffic source shapes.
#[derive(Debug, Clone)]
enum FlowKind {
    /// Constant bit rate: one packet every `interval_ns`.
    Cbr {
        /// Inter-packet gap.
        interval_ns: u64,
    },
    /// Poisson arrivals with the given mean gap.
    Poisson {
        /// Mean inter-packet gap.
        mean_interval_ns: u64,
    },
}

#[derive(Debug, Clone)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    size: u32,
    kind: FlowKind,
    end: SimTime,
}

enum Event<S> {
    /// A traffic source emits its next packet and reschedules itself.
    FlowTick {
        flow: usize,
    },
    /// A packet reaches the head of `via`'s wire and arrives at a node.
    Arrive {
        packet: Packet<S>,
        via: Dart,
        epoch: u64,
    },
    /// Physical link state changes.
    PhysicalDown(LinkId),
    PhysicalUp(LinkId),
    /// Control-plane visibility changes, derived from physical events
    /// after the detection delay (and, for repairs, the hold-down).
    /// Guarded by the link epoch at emission: a transition that was
    /// overtaken by another flap is discarded.
    VisibleDown(LinkId, u64),
    VisibleUp(LinkId, u64),
}

/// Per-dart (directional) transmission state.
#[derive(Debug, Clone, Default)]
struct TxState {
    /// When the current transmission (if any) finishes.
    busy_until: SimTime,
    /// Scheduled transmission start times of queued packets; entries
    /// `<= now` have left the queue.
    starts: std::collections::VecDeque<SimTime>,
}

/// The simulator, generic over the forwarding scheme.
pub struct Simulator<'a, T: TimedForwarding> {
    graph: &'a Graph,
    agent: &'a T,
    config: SimConfig,
    events: EventQueue<Event<T::State>>,
    now: SimTime,
    /// Physical link state (true = down) and failure epoch counter.
    phys_down: Vec<bool>,
    epoch: Vec<u64>,
    /// What the control plane currently believes.
    visible_failed: LinkSet,
    tx: Vec<TxState>,
    flows: Vec<Flow>,
    rng: StdRng,
    metrics: Metrics,
}

impl<'a, T: TimedForwarding> Simulator<'a, T> {
    /// Creates a simulator over `graph` driving `agent`.
    pub fn new(graph: &'a Graph, agent: &'a T, config: SimConfig, seed: u64) -> Self {
        Simulator {
            graph,
            agent,
            config,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            phys_down: vec![false; graph.link_count()],
            epoch: vec![0; graph.link_count()],
            visible_failed: LinkSet::empty(graph.link_count()),
            tx: vec![TxState::default(); graph.dart_count()],
            flows: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::default(),
        }
    }

    /// Schedules a physical link failure. The control plane learns of
    /// it `detection_delay_ns` later (unless overtaken by a repair).
    pub fn schedule_link_down(&mut self, link: LinkId, at: SimTime) {
        self.events.push(at, Event::PhysicalDown(link));
    }

    /// Schedules a link repair. The control plane re-admits the link
    /// `detection_delay_ns + up_holddown_ns` later, and only if the
    /// link has not flapped again in between (§7 dampening).
    pub fn schedule_link_up(&mut self, link: LinkId, at: SimTime) {
        self.events.push(at, Event::PhysicalUp(link));
    }

    /// Schedules `cycles` down/up flaps (§7's link-flapping concern).
    pub fn schedule_flapping(
        &mut self,
        link: LinkId,
        first_down: SimTime,
        down_for_ns: u64,
        up_for_ns: u64,
        cycles: usize,
    ) {
        let mut t = first_down;
        for _ in 0..cycles {
            self.schedule_link_down(link, t);
            t = t.after(down_for_ns);
            self.schedule_link_up(link, t);
            t = t.after(up_for_ns);
        }
    }

    /// Adds a constant-bit-rate flow emitting `size`-byte packets every
    /// `interval_ns` from `start` to `end`.
    pub fn add_cbr_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: u32,
        interval_ns: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let id = self.flows.len();
        self.flows.push(Flow { src, dst, size, kind: FlowKind::Cbr { interval_ns }, end });
        self.events.push(start, Event::FlowTick { flow: id });
    }

    /// Adds a Poisson flow with the given mean inter-arrival gap.
    pub fn add_poisson_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: u32,
        mean_interval_ns: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let id = self.flows.len();
        self.flows.push(Flow { src, dst, size, kind: FlowKind::Poisson { mean_interval_ns }, end });
        self.events.push(start, Event::FlowTick { flow: id });
    }

    /// Runs until the event queue drains or simulated time exceeds
    /// `horizon`, then returns the metrics.
    pub fn run_until(&mut self, horizon: SimTime) -> &Metrics {
        while let Some(t) = self.events.peek_time() {
            if t > horizon {
                break;
            }
            let (t, event) = self.events.pop().expect("peeked");
            self.now = t;
            self.handle(event);
        }
        &self.metrics
    }

    /// The metrics gathered so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The control plane's current failure view.
    pub fn visible_failures(&self) -> &LinkSet {
        &self.visible_failed
    }

    fn handle(&mut self, event: Event<T::State>) {
        match event {
            Event::FlowTick { flow } => self.handle_flow_tick(flow),
            Event::Arrive { packet, via, epoch } => {
                if self.epoch[via.link().index()] != epoch {
                    // The link failed (or flapped) while the packet was
                    // queued or in flight.
                    self.metrics.record_drop(SimDropReason::LostInFlight);
                    return;
                }
                let at = self.graph.dart_head(via);
                self.process_at_node(at, Some(via), packet);
            }
            Event::PhysicalDown(l) => {
                if !self.phys_down[l.index()] {
                    self.phys_down[l.index()] = true;
                    self.epoch[l.index()] += 1;
                    let epoch = self.epoch[l.index()];
                    self.events.push(
                        self.now.after(self.config.detection_delay_ns),
                        Event::VisibleDown(l, epoch),
                    );
                }
            }
            Event::PhysicalUp(l) => {
                if self.phys_down[l.index()] {
                    self.phys_down[l.index()] = false;
                    self.epoch[l.index()] += 1;
                    let epoch = self.epoch[l.index()];
                    self.events.push(
                        self.now
                            .after(self.config.detection_delay_ns)
                            .after(self.config.up_holddown_ns),
                        Event::VisibleUp(l, epoch),
                    );
                }
            }
            Event::VisibleDown(l, epoch) => {
                // Discard if the link transitioned again since.
                if self.epoch[l.index()] == epoch {
                    self.visible_failed.insert(l);
                }
            }
            Event::VisibleUp(l, epoch) => {
                if self.epoch[l.index()] == epoch {
                    self.visible_failed.remove(l);
                }
            }
        }
    }

    fn handle_flow_tick(&mut self, flow_id: usize) {
        let flow = self.flows[flow_id].clone();
        if self.now > flow.end {
            return;
        }
        self.metrics.injected += 1;
        let packet = Packet {
            dst: flow.dst,
            size: flow.size,
            sent: self.now,
            hops: 0,
            state: T::State::default(),
        };
        self.process_at_node(flow.src, None, packet);

        let gap = match flow.kind {
            FlowKind::Cbr { interval_ns } => interval_ns,
            FlowKind::Poisson { mean_interval_ns } => {
                // Inverse-CDF exponential draw; clamp away from 0 to
                // keep event counts finite.
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                ((-u.ln()) * mean_interval_ns as f64).max(1.0) as u64
            }
        };
        let next = self.now.after(gap);
        if next <= flow.end {
            self.events.push(next, Event::FlowTick { flow: flow_id });
        }
    }

    fn process_at_node(&mut self, at: NodeId, ingress: Option<Dart>, mut packet: Packet<T::State>) {
        if at == packet.dst {
            self.metrics.record_delivery(packet.sent, self.now, packet.hops);
            return;
        }
        if packet.hops >= self.config.hop_budget {
            self.metrics.record_drop(SimDropReason::HopBudget);
            return;
        }
        let decision = self.agent.decide_at(
            self.now,
            at,
            ingress,
            packet.dst,
            &mut packet.state,
            &self.visible_failed,
        );
        match decision {
            ForwardDecision::Drop(reason) => {
                self.metrics.record_drop(SimDropReason::Agent(reason));
            }
            ForwardDecision::Forward(out) => {
                debug_assert_eq!(self.graph.dart_tail(out), at, "agent must forward from {at}");
                if self.phys_down[out.link().index()] {
                    // Physically dead egress (whether or not the agent
                    // could know): the loss window.
                    self.metrics.record_drop(SimDropReason::InterfaceDown);
                    return;
                }
                self.transmit(out, packet);
            }
        }
    }

    fn transmit(&mut self, out: Dart, mut packet: Packet<T::State>) {
        let tx = &mut self.tx[out.index()];
        // Retire queue entries that have already started transmission.
        while tx.starts.front().is_some_and(|&s| s <= self.now) {
            tx.starts.pop_front();
        }
        if tx.starts.len() >= self.config.queue_capacity {
            self.metrics.record_drop(SimDropReason::QueueOverflow);
            return;
        }
        let start = tx.busy_until.max(self.now);
        let tx_time = transmission_nanos(packet.size, self.config.bandwidth_bps);
        let done = start.after(tx_time);
        tx.busy_until = done;
        if start > self.now {
            tx.starts.push_back(start);
        }
        let weight = u64::from(self.graph.weight(out.link()));
        let prop =
            (weight * self.config.prop_delay_ns_per_weight).max(self.config.min_prop_delay_ns);
        packet.hops += 1;
        let epoch = self.epoch[out.link().index()];
        self.events.push(done.after(prop), Event::Arrive { packet, via: out, epoch });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Static;
    use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
    use pr_embedding::{CellularEmbedding, RotationSystem};
    use pr_graph::generators;

    fn pr_net(g: &Graph) -> PrNetwork {
        let emb = CellularEmbedding::new(g, RotationSystem::identity(g)).unwrap();
        PrNetwork::compile(g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops)
    }

    #[test]
    fn cbr_flow_delivers_everything_without_failures() {
        let g = generators::ring(4, 1);
        let net = pr_net(&g);
        let agent = Static(net.agent(&g));
        let mut sim = Simulator::new(&g, &agent, SimConfig::default(), 1);
        sim.add_cbr_flow(
            NodeId(0),
            NodeId(2),
            1024,
            1_000_000, // 1 ms apart
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        let m = sim.run_until(SimTime::from_secs(1));
        assert_eq!(m.injected, 101);
        assert_eq!(m.delivered, 101);
        assert_eq!(m.total_dropped(), 0);
        // Two hops of >= 50 µs propagation each.
        assert!(m.mean_latency_ns().unwrap() >= 100_000.0);
        assert_eq!(m.hops_max, 2);
    }

    #[test]
    fn instant_detection_pr_loses_nothing_on_failure() {
        let g = generators::ring(5, 1);
        let net = pr_net(&g);
        let agent = Static(net.agent(&g));
        let mut sim = Simulator::new(&g, &agent, SimConfig::default(), 2);
        sim.add_cbr_flow(
            NodeId(1),
            NodeId(0),
            512,
            100_000,
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        // Fail the direct link mid-run; detection is instant by default.
        let direct = g.find_link(NodeId(1), NodeId(0)).unwrap();
        sim.schedule_link_down(direct, SimTime::from_millis(20));
        let m = sim.run_until(SimTime::from_secs(1));
        assert_eq!(m.injected, 501);
        // Packets already in flight on the failed link may be lost, and
        // the packet emitted at the exact failure instant races the
        // visibility update (event order at equal timestamps); nothing
        // else may be lost.
        assert!(m.delivered >= 499, "delivered {}", m.delivered);
        assert!(m.drops.get("egress interface down").copied().unwrap_or(0) <= 1);
    }

    #[test]
    fn detection_delay_creates_the_loss_window() {
        let g = generators::ring(5, 1);
        let net = pr_net(&g);
        let agent = Static(net.agent(&g));
        let config = SimConfig {
            detection_delay_ns: 10_000_000, // 10 ms blind window
            ..Default::default()
        };
        let mut sim = Simulator::new(&g, &agent, config, 3);
        sim.add_cbr_flow(
            NodeId(1),
            NodeId(0),
            512,
            100_000, // 10 kpps
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        let direct = g.find_link(NodeId(1), NodeId(0)).unwrap();
        sim.schedule_link_down(direct, SimTime::from_millis(20));
        let m = sim.run_until(SimTime::from_secs(1));
        let iface_drops = m.drops.get("egress interface down").copied().unwrap_or(0);
        // ~10 ms of 10 kpps aimed at a dead interface ≈ 100 packets.
        assert!(
            (80..=120).contains(&iface_drops),
            "expected ≈100 interface drops, got {iface_drops}"
        );
        // After detection, PR recovers: the rest are delivered.
        assert!(m.delivered >= 850, "delivered {}", m.delivered);
    }

    #[test]
    fn queue_overflow_under_congestion() {
        // Two flows at line rate into the same 1-link bottleneck.
        let g = generators::path(2, 1);
        let net = pr_net(&g);
        let agent = Static(net.agent(&g));
        let config = SimConfig {
            bandwidth_bps: 8_192_000, // 1000 pkt/s at 1024 B
            queue_capacity: 4,
            ..Default::default()
        };
        let mut sim = Simulator::new(&g, &agent, config, 4);
        // 2000 pkt/s offered into a 1000 pkt/s link.
        sim.add_cbr_flow(
            NodeId(0),
            NodeId(1),
            1024,
            500_000,
            SimTime::ZERO,
            SimTime::from_millis(500),
        );
        let m = sim.run_until(SimTime::from_secs(2));
        assert!(m.drops.get("egress queue overflow").copied().unwrap_or(0) > 100);
        assert!(m.delivered > 400, "the bottleneck still drains at its rate");
    }

    #[test]
    fn flapping_links_lose_in_flight_packets_each_cycle() {
        let g = generators::ring(4, 1);
        let net = pr_net(&g);
        let agent = Static(net.agent(&g));
        let mut sim = Simulator::new(&g, &agent, SimConfig::default(), 5);
        sim.add_cbr_flow(
            NodeId(0),
            NodeId(1),
            256,
            50_000,
            SimTime::ZERO,
            SimTime::from_millis(200),
        );
        let direct = g.find_link(NodeId(0), NodeId(1)).unwrap();
        sim.schedule_flapping(direct, SimTime::from_millis(10), 5_000_000, 5_000_000, 10);
        let m = sim.run_until(SimTime::from_secs(1));
        assert_eq!(m.injected, 4001);
        // Deliveries continue (PR reroutes the long way while down).
        assert!(m.delivered > 3900, "delivered {}", m.delivered);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let g = generators::ring(6, 1);
        let net = pr_net(&g);
        let agent = Static(net.agent(&g));
        let run = |seed| {
            let mut sim = Simulator::new(&g, &agent, SimConfig::default(), seed);
            sim.add_poisson_flow(
                NodeId(0),
                NodeId(3),
                700,
                80_000,
                SimTime::ZERO,
                SimTime::from_millis(200),
            );
            sim.schedule_link_down(
                g.find_link(NodeId(0), NodeId(1)).unwrap(),
                SimTime::from_millis(50),
            );
            let m = sim.run_until(SimTime::from_secs(1)).clone();
            (m.injected, m.delivered, m.latency_sum_ns, m.hops_sum)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds draw different Poisson gaps");
    }

    #[test]
    fn hop_budget_stops_livelocks() {
        // Basic-mode PR livelocks under dual failure (Figure 1(c));
        // inside the timed simulator the hop budget must end it.
        let (g, orders) = pr_topologies::figure1();
        let rot = RotationSystem::from_neighbor_orders(&g, &orders).unwrap();
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        let net = PrNetwork::compile(&g, emb, PrMode::Basic, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let config = SimConfig { hop_budget: 64, ..Default::default() };
        let mut sim = Simulator::new(&g, &agent, config, 6);
        let a = g.node_by_name("A").unwrap();
        let f = g.node_by_name("F").unwrap();
        sim.add_cbr_flow(a, f, 512, 1_000_000, SimTime::ZERO, SimTime::from_millis(5));
        let de = g.find_link(g.node_by_name("D").unwrap(), g.node_by_name("E").unwrap()).unwrap();
        let bc = g.find_link(g.node_by_name("B").unwrap(), g.node_by_name("C").unwrap()).unwrap();
        sim.schedule_link_down(de, SimTime::ZERO);
        sim.schedule_link_down(bc, SimTime::ZERO);
        let m = sim.run_until(SimTime::from_secs(5));
        assert_eq!(m.injected, 6);
        assert_eq!(m.drops.get("hop budget exhausted").copied().unwrap_or(0), 6);
    }
}
