//! The deterministic event queue.
//!
//! A binary heap keyed by `(time, sequence)`: the sequence number is
//! assigned at push, so simultaneous events fire in push order and two
//! runs with the same inputs produce identical traces. (Heap order
//! alone is not deterministic for equal keys.)

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A time-ordered queue of `E` events with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, OrdIgnored<E>)>>,
    next_seq: u64,
}

/// Wrapper that makes the payload invisible to the heap's ordering.
#[derive(Debug, Clone)]
struct OrdIgnored<E>(E);

impl<E> PartialEq for OrdIgnored<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for OrdIgnored<E> {}
impl<E> PartialOrd for OrdIgnored<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OrdIgnored<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq, OrdIgnored(event))));
    }

    /// Removes and returns the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, OrdIgnored(e)))| (t, e))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_keep_determinism() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), "late-first");
        q.push(SimTime(5), "early");
        q.push(SimTime(10), "late-second");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late-first");
        assert_eq!(q.pop().unwrap().1, "late-second");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
