//! Property-based tests for the discrete-event simulator.
//!
//! The big one is **conservation**: once the event queue drains, every
//! injected packet is accounted for exactly once (delivered or dropped
//! with a reason). A simulator that silently leaks or duplicates
//! packets produces plausible-looking loss numbers that are wrong.

use proptest::prelude::*;

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::{planar, CellularEmbedding};
use pr_graph::{Graph, LinkId, NodeId};
use pr_sim::{SimConfig, SimTime, Simulator, Static};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random planar scenario: graph+embedding, a couple of flows, a
/// couple of link events.
fn arb_setup() -> impl Strategy<Value = (Graph, CellularEmbedding, u64)> {
    (0u64..u64::MAX, 3usize..10).prop_map(|(seed, n)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, rot) = planar::random_outerplanar(n.max(4), 0.5, 1..=4, &mut rng);
        let emb = CellularEmbedding::new(&g, rot).unwrap();
        (g, emb, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: injected == delivered + dropped after the queue
    /// drains (horizon far beyond the last flow).
    #[test]
    fn packets_are_conserved((g, emb, seed) in arb_setup()) {
        let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let config = SimConfig { detection_delay_ns: (seed % 3) * 500_000, ..Default::default() };
        let mut sim = Simulator::new(&g, &agent, config, seed);

        let n = g.node_count() as u32;
        sim.add_cbr_flow(
            NodeId(seed as u32 % n),
            NodeId((seed >> 8) as u32 % n),
            512,
            40_000,
            SimTime::ZERO,
            SimTime::from_millis(20),
        );
        sim.add_poisson_flow(
            NodeId((seed >> 16) as u32 % n),
            NodeId((seed >> 24) as u32 % n),
            900,
            60_000,
            SimTime::from_millis(2),
            SimTime::from_millis(18),
        );
        // Fail and maybe repair a random link mid-run.
        let link = LinkId((seed % g.link_count() as u64) as u32);
        sim.schedule_link_down(link, SimTime::from_millis(5));
        if seed % 2 == 0 {
            sim.schedule_link_up(link, SimTime::from_millis(12));
        }

        let m = sim.run_until(SimTime::from_secs(60)).clone();
        prop_assert_eq!(
            m.injected,
            m.delivered + m.total_dropped(),
            "leaked or duplicated packets: {:?}",
            m
        );
        // Latency sanity: any delivered packet took at least one
        // propagation floor.
        if m.delivered > 0 && m.hops_sum > 0 {
            prop_assert!(m.latency_sum_ns >= u128::from(m.delivered));
        }
    }

    /// With no failures and light load, everything is delivered and
    /// mean hops match shortest paths.
    #[test]
    fn failure_free_light_load_is_lossless((g, emb, seed) in arb_setup()) {
        let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let mut sim = Simulator::new(&g, &agent, SimConfig::default(), seed);
        let n = g.node_count() as u32;
        let src = NodeId(seed as u32 % n);
        let dst = NodeId(((seed >> 8) as u32 + 1) % n);
        sim.add_cbr_flow(src, dst, 256, 1_000_000, SimTime::ZERO, SimTime::from_millis(50));
        let m = sim.run_until(SimTime::from_secs(10)).clone();
        prop_assert_eq!(m.injected, 51);
        if src == dst {
            // Degenerate flow: delivered instantly at injection.
            prop_assert_eq!(m.delivered, 51);
            return Ok(());
        }
        prop_assert_eq!(m.delivered, 51);
        prop_assert_eq!(m.total_dropped(), 0);
        let tree = pr_graph::SpTree::towards_all_live(&g, dst);
        prop_assert_eq!({ m.hops_max }, tree.hops(src).unwrap());
    }

    /// Determinism across the full feature surface: identical runs,
    /// identical metrics.
    #[test]
    fn identical_runs_identical_metrics((g, emb, seed) in arb_setup()) {
        let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
        let agent = Static(net.agent(&g));
        let run = || {
            let config = SimConfig {
                detection_delay_ns: 300_000,
                up_holddown_ns: 2_000_000,
                ..Default::default()
            };
            let mut sim = Simulator::new(&g, &agent, config, seed);
            let n = g.node_count() as u32;
            sim.add_poisson_flow(
                NodeId(seed as u32 % n),
                NodeId((seed >> 4) as u32 % n),
                700,
                30_000,
                SimTime::ZERO,
                SimTime::from_millis(30),
            );
            let link = LinkId((seed % g.link_count() as u64) as u32);
            sim.schedule_flapping(link, SimTime::from_millis(3), 1_000_000, 2_000_000, 5);
            let m = sim.run_until(SimTime::from_secs(30)).clone();
            (m.injected, m.delivered, m.total_dropped(), m.latency_sum_ns, m.hops_sum)
        };
        prop_assert_eq!(run(), run());
    }
}
