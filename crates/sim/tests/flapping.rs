//! §7 of the paper: link flapping and the hold-down defence.
//!
//! "As with all alternate forwarding schemes, PR must cater for the
//! possibility of link flapping. This can be done simply by ensuring
//! that link state transitions only happen after the link has been
//! idle for long enough…" — these tests exercise exactly that knob
//! ([`SimConfig::up_holddown_ns`]).

use pr_core::{DiscriminatorKind, PrMode, PrNetwork};
use pr_embedding::{CellularEmbedding, RotationSystem};
use pr_graph::{generators, NodeId};
use pr_sim::{SimConfig, SimTime, Simulator, Static};

fn pr_ring() -> (pr_graph::Graph, PrNetwork) {
    let g = generators::ring(5, 1);
    let emb = CellularEmbedding::new(&g, RotationSystem::identity(&g)).unwrap();
    let net = PrNetwork::compile(&g, emb, PrMode::DistanceDiscriminator, DiscriminatorKind::Hops);
    (g, net)
}

/// Without hold-down, every "up" blip lures traffic back onto the
/// flapping link, and the next "down" kills the packets in flight.
/// With a hold-down longer than the flap period, the control plane
/// treats the link as down throughout: traffic stays on the stable
/// detour and everything arrives.
#[test]
fn holddown_suppresses_flap_losses() {
    let run = |holddown_ns: u64| {
        let (g, net) = pr_ring();
        let agent = Static(net.agent(&g));
        let config = SimConfig {
            detection_delay_ns: 100_000, // 0.1 ms detection
            up_holddown_ns: holddown_ns,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&g, &agent, config, 11);
        // Steady flow 1 -> 0 whose direct link flaps every 2 ms.
        sim.add_cbr_flow(
            NodeId(1),
            NodeId(0),
            512,
            20_000, // 50 kpps
            SimTime::ZERO,
            SimTime::from_millis(200),
        );
        let flappy = g.find_link(NodeId(1), NodeId(0)).unwrap();
        sim.schedule_flapping(flappy, SimTime::from_millis(10), 2_000_000, 2_000_000, 40);
        sim.run_until(SimTime::from_secs(2)).clone()
    };

    let without = run(0);
    let with = run(50_000_000); // 50 ms hold-down >> 2 ms flap period

    assert_eq!(without.injected, with.injected);
    // No hold-down: repeated interface-down losses as traffic swings
    // back onto the link between flaps.
    let lost_without = without.total_dropped();
    let lost_with = with.total_dropped();
    assert!(
        lost_without > 100,
        "expected substantial flap losses without hold-down, got {lost_without}"
    );
    // Hold-down: only the first detection window loses packets.
    assert!(
        lost_with < lost_without / 10,
        "hold-down should suppress flap losses: {lost_with} vs {lost_without}"
    );
    assert!(with.delivery_ratio() > 0.995, "got {}", with.delivery_ratio());
}

/// The visibility state machine: a repair only becomes visible after
/// detection + hold-down, and a flap during the hold-down cancels the
/// pending re-admission.
#[test]
fn visibility_follows_holddown_rules() {
    let (g, net) = pr_ring();
    let agent = Static(net.agent(&g));
    let config = SimConfig {
        detection_delay_ns: 1_000_000, // 1 ms
        up_holddown_ns: 10_000_000,    // 10 ms
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&g, &agent, config, 3);
    let link = g.find_link(NodeId(0), NodeId(1)).unwrap();

    sim.schedule_link_down(link, SimTime::from_millis(10));
    sim.schedule_link_up(link, SimTime::from_millis(20));
    // Flap again during the hold-down window.
    sim.schedule_link_down(link, SimTime::from_millis(25));

    // At 15 ms: down detected (10 + 1 <= 15).
    sim.run_until(SimTime::from_millis(15));
    assert!(sim.visible_failures().contains(link), "down must be visible after detection");

    // At 30 ms: the 20 ms repair would become visible at 31 ms, but
    // the 25 ms flap must cancel it.
    sim.run_until(SimTime::from_millis(35));
    assert!(
        sim.visible_failures().contains(link),
        "repair overtaken by a flap must not be re-admitted"
    );

    // Now a stable repair: visible after detection + hold-down.
    sim.schedule_link_up(link, SimTime::from_millis(40));
    sim.run_until(SimTime::from_millis(45));
    assert!(sim.visible_failures().contains(link), "still in hold-down at 45 ms");
    sim.run_until(SimTime::from_millis(52));
    assert!(!sim.visible_failures().contains(link), "re-admitted after 40 + 1 + 10 ms");
}

/// Determinism survives the richer event machinery.
#[test]
fn flapping_runs_are_deterministic() {
    let run = || {
        let (g, net) = pr_ring();
        let agent = Static(net.agent(&g));
        let config = SimConfig {
            detection_delay_ns: 200_000,
            up_holddown_ns: 3_000_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&g, &agent, config, 9);
        sim.add_poisson_flow(
            NodeId(2),
            NodeId(0),
            800,
            50_000,
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        let link = g.find_link(NodeId(1), NodeId(0)).unwrap();
        sim.schedule_flapping(link, SimTime::from_millis(5), 1_000_000, 1_500_000, 20);
        let m = sim.run_until(SimTime::from_secs(1)).clone();
        (m.injected, m.delivered, m.total_dropped(), m.latency_sum_ns)
    };
    assert_eq!(run(), run());
}
